//! Configuration transforms underlying the reconfiguration primitives.
//!
//! Every function here rewrites a [`ParallelConfig`] into a new candidate,
//! returning `None` when the rewrite is structurally impossible (op ranges
//! would empty, no valid power-of-two factorisation exists, the microbatch
//! constraint cannot be met). All transforms are semantic-preserving: they
//! never change the aggregated batch, only how it is computed.

use aceso_config::{OpParallel, ParallelConfig, StageConfig};
use aceso_model::ModelGraph;

/// Drops ZeRO sharding when the op's data-parallel group degenerates to a
/// singleton — `validate` rejects `zero && dp == 1`, so every transform
/// that can lower dp must clamp before returning.
fn clamp_zero(op: &mut OpParallel) {
    if op.dp == 1 {
        op.zero = false;
    }
}

/// Largest power-of-two tensor-parallel degree `≤ want` that the operator
/// accepts and that divides `gpus`.
fn clamp_tp(want: u32, tp_limit: u32, gpus: u32) -> u32 {
    let mut tp = want.min(tp_limit).min(gpus);
    if !tp.is_power_of_two() {
        tp = tp.next_power_of_two() / 2;
    }
    while tp > 1 && !gpus.is_multiple_of(tp) {
        tp /= 2;
    }
    tp.max(1)
}

/// Builds per-op settings for `op` joining a stage with `gpus` devices,
/// modelled on a template setting from that stage.
fn adopt_settings(
    model: &ModelGraph,
    op_idx: usize,
    template: OpParallel,
    gpus: u32,
    microbatch: usize,
) -> Option<OpParallel> {
    let op = &model.ops[op_idx];
    let tp = clamp_tp(template.tp, op.tp_limit, gpus);
    let dp = gpus / tp;
    if !dp.is_power_of_two() || !microbatch.is_multiple_of(dp as usize) {
        // Fall back to the largest tp that leaves a batch-compatible dp.
        let mut tp2 = gpus.min(op.tp_limit.next_power_of_two());
        while tp2 >= 1 {
            if tp2.is_power_of_two() && tp2 <= op.tp_limit && gpus.is_multiple_of(tp2) {
                let dp2 = gpus / tp2;
                if dp2.is_power_of_two() && microbatch.is_multiple_of(dp2 as usize) {
                    let mut adopted = OpParallel {
                        tp: tp2,
                        dp: dp2,
                        dim_index: template.dim_index.min((op.partitions.len() - 1) as u8),
                        recompute: template.recompute,
                        zero: template.zero,
                    };
                    clamp_zero(&mut adopted);
                    return Some(adopted);
                }
            }
            tp2 /= 2;
        }
        return None;
    }
    let mut adopted = OpParallel {
        tp,
        dp,
        dim_index: template.dim_index.min((op.partitions.len() - 1) as u8),
        recompute: template.recompute,
        zero: template.zero,
    };
    clamp_zero(&mut adopted);
    Some(adopted)
}

/// Moves `k` boundary operators from stage `from` to the adjacent stage
/// `to` (the paper's inc/dec-op# pair, §4.1: only contiguous boundary runs
/// can move).
pub fn move_ops(
    model: &ModelGraph,
    config: &ParallelConfig,
    from: usize,
    to: usize,
    k: usize,
) -> Option<ParallelConfig> {
    if from >= config.stages.len() || to >= config.stages.len() {
        return None;
    }
    if from.abs_diff(to) != 1 || k == 0 || config.stages[from].num_ops() <= k {
        return None;
    }
    let mut cfg = config.clone();
    let to_gpus = cfg.stages[to].gpus as u32;
    let mb = cfg.microbatch;

    if to < from {
        // Move the first k ops of `from` to the end of `to`.
        let template = *cfg.stages[to].ops.last()?;
        for i in 0..k {
            let op_idx = cfg.stages[from].op_start + i;
            let setting = adopt_settings(model, op_idx, template, to_gpus, mb)?;
            cfg.stages[to].ops.push(setting);
        }
        cfg.stages[to].op_end += k;
        cfg.stages[from].op_start += k;
        cfg.stages[from].ops.drain(..k);
    } else {
        // Move the last k ops of `from` to the front of `to`.
        let template = *cfg.stages[to].ops.first()?;
        let mut new_front = Vec::with_capacity(k);
        for i in 0..k {
            let op_idx = cfg.stages[from].op_end - k + i;
            let setting = adopt_settings(model, op_idx, template, to_gpus, mb)?;
            new_front.push(setting);
        }
        cfg.stages[to].op_start -= k;
        let n = cfg.stages[from].num_ops();
        cfg.stages[from].ops.truncate(n - k);
        cfg.stages[from].op_end -= k;
        new_front.append(&mut cfg.stages[to].ops);
        cfg.stages[to].ops = new_front;
    }
    crate::invariants::assert_structure(model, &cfg, "move_ops");
    Some(cfg)
}

/// Direction of a dp/tp concurrency change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Change data-parallel degrees.
    Dp,
    /// Change tensor-parallel degrees.
    Tp,
}

/// Halves a stage's device count in place by halving each op's dp (or tp
/// when dp is already 1). Returns `false` when impossible (1-GPU stage).
fn halve_stage_inplace(stage: &mut StageConfig) -> bool {
    if stage.gpus <= 1 {
        return false;
    }
    for op in &mut stage.ops {
        if op.dp > 1 {
            op.dp /= 2;
        } else if op.tp > 1 {
            op.tp /= 2;
        } else {
            return false;
        }
        clamp_zero(op);
    }
    stage.gpus /= 2;
    true
}

/// Doubles a stage's device count in place through `mech`, falling back to
/// the other mechanism per-op where limits forbid the preferred one.
/// Returns `false` when no op can absorb the doubling.
fn double_stage_inplace(model: &ModelGraph, stage: &mut StageConfig, mech: Mechanism) -> bool {
    let mut ok = true;
    for (j, op) in stage.ops.iter_mut().enumerate() {
        let limit = model.ops[stage.op_start + j].tp_limit;
        match mech {
            Mechanism::Tp if op.tp * 2 <= limit => op.tp *= 2,
            Mechanism::Tp => op.dp *= 2,
            Mechanism::Dp => op.dp *= 2,
        }
        if !op.tp.is_power_of_two() || !op.dp.is_power_of_two() {
            ok = false;
        }
    }
    stage.gpus *= 2;
    ok
}

/// Grows `stage` to twice its devices via `mech`, funding the growth by
/// halving the `donors` (in order) whose halves sum exactly to the needed
/// count. Bumps the microbatch if a larger dp demands it.
pub fn grow_stage(
    model: &ModelGraph,
    config: &ParallelConfig,
    stage: usize,
    mech: Mechanism,
    donors: &[usize],
) -> Option<ParallelConfig> {
    let needed = config.stages[stage].gpus;
    let mut cfg = config.clone();
    let mut granted = 0usize;
    for &d in donors {
        if d == stage || granted >= needed {
            continue;
        }
        let give = cfg.stages[d].gpus / 2;
        if give == 0 || granted + give > needed {
            continue;
        }
        if !halve_stage_inplace(&mut cfg.stages[d]) {
            continue;
        }
        granted += give;
    }
    if granted != needed {
        return None;
    }
    if !double_stage_inplace(model, &mut cfg.stages[stage], mech) {
        return None;
    }
    fix_microbatch(&mut cfg, model)?;
    crate::invariants::assert_structure(model, &cfg, "grow_stage");
    Some(cfg)
}

/// Shrinks `stage` to half its devices (dec-dp/dec-tp), doubling
/// `receivers` (in order) whose device counts sum exactly to the freed half.
pub fn shrink_stage(
    model: &ModelGraph,
    config: &ParallelConfig,
    stage: usize,
    receivers: &[usize],
    mech: Mechanism,
) -> Option<ParallelConfig> {
    let freed = config.stages[stage].gpus / 2;
    if freed == 0 {
        return None;
    }
    let mut cfg = config.clone();
    if !halve_stage_inplace(&mut cfg.stages[stage]) {
        return None;
    }
    let mut remaining = freed;
    for &r in receivers {
        if r == stage || remaining == 0 {
            continue;
        }
        let take = cfg.stages[r].gpus;
        if take > remaining {
            continue;
        }
        if !double_stage_inplace(model, &mut cfg.stages[r], mech) {
            return None;
        }
        remaining -= take;
    }
    if remaining != 0 {
        return None;
    }
    fix_microbatch(&mut cfg, model)?;
    crate::invariants::assert_structure(model, &cfg, "shrink_stage");
    Some(cfg)
}

/// Converts parallelism inside a stage without moving devices:
/// `Tp` doubles tp and halves dp, `Dp` the reverse.
pub fn convert_stage(
    model: &ModelGraph,
    config: &ParallelConfig,
    stage: usize,
    toward: Mechanism,
) -> Option<ParallelConfig> {
    let mut cfg = config.clone();
    let s = &mut cfg.stages[stage];
    for (j, op) in s.ops.iter_mut().enumerate() {
        let limit = model.ops[s.op_start + j].tp_limit;
        match toward {
            Mechanism::Tp => {
                if op.dp < 2 || op.tp * 2 > limit {
                    return None;
                }
                op.tp *= 2;
                op.dp /= 2;
            }
            Mechanism::Dp => {
                if op.tp < 2 {
                    return None;
                }
                op.tp /= 2;
                op.dp *= 2;
            }
        }
        clamp_zero(op);
    }
    fix_microbatch(&mut cfg, model)?;
    crate::invariants::assert_structure(model, &cfg, "convert_stage");
    Some(cfg)
}

/// Converts parallelism for the ops `[start..]` of a stage only — the
/// fine-tuning pass's flexible in-stage tp/dp combination (§4.2). The
/// resharding cost this introduces at the `start` boundary is charged by
/// the performance model.
pub fn convert_suffix(
    model: &ModelGraph,
    config: &ParallelConfig,
    stage: usize,
    start: usize,
    toward: Mechanism,
) -> Option<ParallelConfig> {
    let mut cfg = config.clone();
    let s = &mut cfg.stages[stage];
    if start >= s.ops.len() {
        return None;
    }
    for (j, op) in s.ops.iter_mut().enumerate().skip(start) {
        let limit = model.ops[s.op_start + j].tp_limit;
        match toward {
            Mechanism::Tp => {
                if op.dp < 2 || op.tp * 2 > limit {
                    return None;
                }
                op.tp *= 2;
                op.dp /= 2;
            }
            Mechanism::Dp => {
                if op.tp < 2 {
                    return None;
                }
                op.tp /= 2;
                op.dp *= 2;
            }
        }
        clamp_zero(op);
    }
    fix_microbatch(&mut cfg, model)?;
    crate::invariants::assert_structure(model, &cfg, "convert_suffix");
    Some(cfg)
}

/// Scales the global microbatch by ×2 (`up`) or ÷2, keeping every dp
/// constraint and batch divisibility intact.
pub fn scale_microbatch(
    model: &ModelGraph,
    config: &ParallelConfig,
    up: bool,
) -> Option<ParallelConfig> {
    let mut cfg = config.clone();
    let m = if up {
        cfg.microbatch.checked_mul(2)?
    } else {
        cfg.microbatch / 2
    };
    if m == 0 || m > model.global_batch || !model.global_batch.is_multiple_of(m) {
        return None;
    }
    let max_dp = cfg
        .stages
        .iter()
        .flat_map(|s| s.ops.iter().map(|o| o.dp as usize))
        .max()
        .unwrap_or(1);
    if m % max_dp != 0 && max_dp % m != 0 {
        return None;
    }
    if m < max_dp {
        return None;
    }
    cfg.microbatch = m;
    crate::invariants::assert_structure(model, &cfg, "scale_microbatch");
    Some(cfg)
}

/// Raises the microbatch to the smallest valid value ≥ every dp after a
/// concurrency change. Returns `None` when no valid microbatch exists.
fn fix_microbatch(cfg: &mut ParallelConfig, model: &ModelGraph) -> Option<()> {
    let max_dp = cfg
        .stages
        .iter()
        .flat_map(|s| s.ops.iter().map(|o| o.dp as usize))
        .max()
        .unwrap_or(1);
    let mut m = cfg.microbatch.max(1);
    while m < max_dp || !m.is_multiple_of(max_dp) {
        m *= 2;
        if m > model.global_batch {
            return None;
        }
    }
    if !model.global_batch.is_multiple_of(m) {
        return None;
    }
    cfg.microbatch = m;
    Some(())
}

/// Sets recompute flags of the `k` largest-stash operators in a stage (the
/// paper's greedy inc-rc argument choice, §4.1). `k == usize::MAX` flags
/// all.
pub fn recompute_largest(
    model: &ModelGraph,
    config: &ParallelConfig,
    stage: usize,
    k: usize,
) -> Option<ParallelConfig> {
    let mut cfg = config.clone();
    let s = &mut cfg.stages[stage];
    let mut order: Vec<usize> = (0..s.ops.len()).filter(|&j| !s.ops[j].recompute).collect();
    if order.is_empty() {
        return None;
    }
    order.sort_by_key(|&j| std::cmp::Reverse(model.ops[s.op_start + j].stash_elems));
    for &j in order.iter().take(k) {
        s.ops[j].recompute = true;
    }
    crate::invariants::assert_structure(model, &cfg, "recompute_largest");
    Some(cfg)
}

/// Clears recompute flags of the `k` smallest-stash recomputed operators in
/// a stage (dec-rc). `k == usize::MAX` clears all.
pub fn uncompute_smallest(
    model: &ModelGraph,
    config: &ParallelConfig,
    stage: usize,
    k: usize,
) -> Option<ParallelConfig> {
    let mut cfg = config.clone();
    let s = &mut cfg.stages[stage];
    let mut order: Vec<usize> = (0..s.ops.len()).filter(|&j| s.ops[j].recompute).collect();
    if order.is_empty() {
        return None;
    }
    order.sort_by_key(|&j| model.ops[s.op_start + j].stash_elems);
    for &j in order.iter().take(k) {
        s.ops[j].recompute = false;
    }
    crate::invariants::assert_structure(model, &cfg, "uncompute_smallest");
    Some(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_cluster::ClusterSpec;
    use aceso_config::balanced_init;
    use aceso_config::validate::validate;
    use aceso_model::zoo::gpt3_custom;

    fn setup() -> (ModelGraph, ClusterSpec, ParallelConfig) {
        let model = gpt3_custom("t", 4, 512, 8, 256, 8192, 64);
        let cluster = ClusterSpec::v100(1, 8);
        let cfg = balanced_init(&model, &cluster, 2).expect("init");
        (model, cluster, cfg)
    }

    #[test]
    fn move_ops_preserves_partition() {
        let (m, c, cfg) = setup();
        let moved = move_ops(&m, &cfg, 0, 1, 3).expect("move ok");
        assert!(validate(&moved, &m, &c).is_ok());
        assert_eq!(moved.stages[0].num_ops(), cfg.stages[0].num_ops() - 3);
        assert_eq!(moved.stages[1].num_ops(), cfg.stages[1].num_ops() + 3);
    }

    #[test]
    fn move_ops_backward() {
        let (m, c, cfg) = setup();
        let moved = move_ops(&m, &cfg, 1, 0, 2).expect("move ok");
        assert!(validate(&moved, &m, &c).is_ok());
        assert_eq!(moved.stages[0].op_end, cfg.stages[0].op_end + 2);
    }

    #[test]
    fn move_ops_rejects_emptying() {
        let (m, _, cfg) = setup();
        let n0 = cfg.stages[0].num_ops();
        assert!(move_ops(&m, &cfg, 0, 1, n0).is_none());
        assert!(move_ops(&m, &cfg, 0, 1, 0).is_none());
        assert!(move_ops(&m, &cfg, 0, 0, 1).is_none());
    }

    #[test]
    fn grow_with_donor_rebalances_gpus() {
        let (m, c, cfg) = setup();
        // Stage 0 doubles 4→8 funded by stage 1 halving 4→... needs 4,
        // donor gives 2 — insufficient; instead grow stage with both equal
        // requires donors summing to 4: stage 1 gives 2 only. Expect None.
        let r = grow_stage(&m, &cfg, 0, Mechanism::Dp, &[1]);
        assert!(r.is_none());
        // A 4-stage config [2,2,2,2]: stage 0 needs 2, stage 1 gives 1 and
        // stage 2 gives 1.
        let cfg4 = balanced_init(&m, &ClusterSpec::v100(1, 8), 4).expect("init");
        let grown = grow_stage(&m, &cfg4, 0, Mechanism::Dp, &[1, 2]).expect("grow ok");
        assert!(validate(&grown, &m, &c).is_ok());
        assert_eq!(grown.stages[0].gpus, 4);
        assert_eq!(grown.stages[1].gpus, 1);
        assert_eq!(grown.stages[2].gpus, 1);
        assert_eq!(grown.stages[3].gpus, 2);
    }

    #[test]
    fn shrink_redistributes_gpus() {
        let (m, c, _) = setup();
        let cfg4 = balanced_init(&m, &ClusterSpec::v100(1, 8), 4).expect("init");
        // Stage 3 shrinks 2→1, freeing 1; stage 2 (1 gpu... ) — sizes are
        // [2,2,2,2], so freed=1 goes to a 1-gpu stage; none exists → fail.
        assert!(shrink_stage(&m, &cfg4, 3, &[2], Mechanism::Dp).is_none());
        // Grow first to create [4,1,1,2], then shrink stage 0: frees 2 →
        // stage 3 has exactly 2? take=2 == remaining ✓.
        let grown = grow_stage(&m, &cfg4, 0, Mechanism::Dp, &[1, 2]).expect("grow");
        let shrunk = shrink_stage(&m, &grown, 0, &[3], Mechanism::Dp).expect("shrink");
        assert!(validate(&shrunk, &m, &c).is_ok());
        assert_eq!(shrunk.stages[0].gpus, 2);
        assert_eq!(shrunk.stages[3].gpus, 4);
    }

    #[test]
    fn convert_dp_to_tp_and_back() {
        let (m, c, cfg) = setup();
        let tp = convert_stage(&m, &cfg, 0, Mechanism::Tp).expect("convert");
        assert!(validate(&tp, &m, &c).is_ok());
        assert!(tp.stages[0].ops.iter().all(|o| o.tp == 2 && o.dp == 2));
        let back = convert_stage(&m, &tp, 0, Mechanism::Dp).expect("convert back");
        assert_eq!(back.semantic_hash(), cfg.semantic_hash());
    }

    #[test]
    fn convert_respects_tp_limit() {
        let (m, c, _) = setup();
        // One 8-GPU stage, dp=8: conversions reach tp=8 (the attention head
        // limit); a fourth conversion would need tp=16 and must fail.
        let mut cur = balanced_init(&m, &c, 1).expect("init");
        for _ in 0..3 {
            cur = convert_stage(&m, &cur, 0, Mechanism::Tp).expect("convert");
            assert!(validate(&cur, &m, &c).is_ok());
        }
        assert!(convert_stage(&m, &cur, 0, Mechanism::Tp).is_none());
    }

    #[test]
    fn microbatch_scaling() {
        let (m, _, cfg) = setup();
        let up = scale_microbatch(&m, &cfg, true).expect("scale up");
        assert_eq!(up.microbatch, cfg.microbatch * 2);
        let down = scale_microbatch(&m, &up, false).expect("scale down");
        assert_eq!(down.microbatch, cfg.microbatch);
        // Can't go below dp.
        assert!(scale_microbatch(&m, &cfg, false).is_none());
    }

    #[test]
    fn recompute_flags_largest_first() {
        let (m, _, cfg) = setup();
        let rc = recompute_largest(&m, &cfg, 0, 1).expect("rc");
        let flagged: Vec<usize> = rc.stages[0]
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.recompute)
            .map(|(j, _)| j)
            .collect();
        assert_eq!(flagged.len(), 1);
        let j = flagged[0];
        let max_stash = cfg.stages[0]
            .ops
            .iter()
            .enumerate()
            .map(|(i, _)| m.ops[cfg.stages[0].op_start + i].stash_elems)
            .max()
            .unwrap();
        assert_eq!(m.ops[cfg.stages[0].op_start + j].stash_elems, max_stash);
    }

    #[test]
    fn uncompute_roundtrip() {
        let (m, _, cfg) = setup();
        let all = recompute_largest(&m, &cfg, 0, usize::MAX).expect("rc all");
        assert_eq!(all.stages[0].num_recomputed(), all.stages[0].num_ops());
        let none = uncompute_smallest(&m, &all, 0, usize::MAX).expect("unrc");
        assert_eq!(none.stages[0].num_recomputed(), 0);
        assert!(uncompute_smallest(&m, &cfg, 0, 1).is_none());
    }

    #[test]
    fn convert_suffix_creates_in_stage_mix() {
        let (m, c, _) = setup();
        let cfg = balanced_init(&m, &c, 1).expect("init");
        let n = cfg.stages[0].num_ops();
        let mixed = convert_suffix(&m, &cfg, 0, n / 2, Mechanism::Tp).expect("suffix converts");
        assert!(validate(&mixed, &m, &c).is_ok());
        let first = mixed.stages[0].ops[0];
        let last = mixed.stages[0].ops[n - 1];
        assert_eq!(first.tp, 1);
        assert_eq!(last.tp, 2);
        assert_eq!(last.dp * last.tp, first.dp * first.tp);
        // Out-of-range start is rejected.
        assert!(convert_suffix(&m, &cfg, 0, n, Mechanism::Tp).is_none());
    }

    #[test]
    fn grow_bumps_microbatch_when_dp_requires() {
        // Doubling dp beyond the current microbatch must raise it, keeping
        // the aggregated semantics valid.
        let (m, c, _) = setup();
        let cfg4 = balanced_init(&m, &ClusterSpec::v100(1, 8), 4).expect("init");
        assert_eq!(cfg4.microbatch, 2);
        let grown = grow_stage(&m, &cfg4, 0, Mechanism::Dp, &[1, 2]).expect("grow");
        assert!(validate(&grown, &m, &c).is_ok());
        // Stage 0 now has dp=4 > old microbatch 2 → microbatch bumped.
        assert!(grown.microbatch >= 4);
    }

    #[test]
    fn dp_reducing_transforms_clamp_zero() {
        let (m, c, mut cfg) = setup();
        // dp=4 stages with zero on; converting toward tp repeatedly drives
        // dp to 1, and the zero flag must drop with it.
        for s in &mut cfg.stages {
            for o in &mut s.ops {
                o.zero = true;
            }
        }
        assert!(validate(&cfg, &m, &c).is_ok());
        let mut cur = cfg;
        while let Some(next) = convert_stage(&m, &cur, 0, Mechanism::Tp) {
            assert!(
                validate(&next, &m, &c).is_ok(),
                "zero must be clamped when dp hits 1"
            );
            cur = next;
        }
        assert!(cur.stages[0].ops.iter().any(|o| o.dp == 1 && !o.zero));

        // halve_stage_inplace path (via shrink/grow) also clamps.
        let cfg4 = balanced_init(&m, &ClusterSpec::v100(1, 8), 4).expect("init");
        let mut zeroed = cfg4;
        for s in &mut zeroed.stages {
            for o in &mut s.ops {
                o.zero = o.dp > 1;
            }
        }
        if let Some(grown) = grow_stage(&m, &zeroed, 0, Mechanism::Dp, &[1, 2]) {
            assert!(validate(&grown, &m, &ClusterSpec::v100(1, 8)).is_ok());
        }
    }

    #[test]
    fn clamp_tp_respects_divisibility() {
        assert_eq!(clamp_tp(8, 64, 8), 8);
        assert_eq!(clamp_tp(8, 4, 8), 4);
        assert_eq!(clamp_tp(5, 64, 8), 4);
        assert_eq!(clamp_tp(16, 64, 8), 8);
        assert_eq!(clamp_tp(0, 64, 8), 1);
    }

    #[test]
    fn move_ops_adopts_receiver_settings() {
        let (m, c, _) = setup();
        // Give stage 1 a distinctive setting; moved ops should copy it.
        let mut cfg = balanced_init(&m, &c, 2).expect("init");
        cfg = convert_stage(&m, &cfg, 1, Mechanism::Tp).expect("convert");
        let moved = move_ops(&m, &cfg, 0, 1, 2).expect("move");
        assert!(validate(&moved, &m, &c).is_ok());
        let adopted = moved.stages[1].ops[0];
        // New front ops run at the receiving stage's gpu budget.
        assert_eq!(adopted.gpus() as usize, moved.stages[1].gpus);
    }
}
