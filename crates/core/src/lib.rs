//! The Aceso search algorithm — the paper's primary contribution.
//!
//! Aceso treats parallel-configuration search as *iterative bottleneck
//! alleviation*: evaluate the current configuration with the performance
//! model, find the bottleneck stage (Heuristic-1, [`bottleneck`]), query
//! the reconfiguration-primitives table for primitives whose resource
//! signature relieves the constrained resource ([`primitives`], Table 1),
//! and chase sequences of primitives with a bounded multi-hop backtracking
//! search until a strictly better configuration appears ([`search`],
//! Algorithms 1 & 2). An op-level fine-tuning pass ([`finetune`], §4.2)
//! polishes each accepted configuration, and independent pipeline stage
//! counts are searched on parallel threads (§4.3).

#![deny(missing_docs)]

pub mod bottleneck;
pub mod checkpoint;
pub mod finetune;
pub(crate) mod frontier;
pub mod invariants;
pub mod primitives;
pub mod search;
pub mod trace;
pub mod transform;

pub use bottleneck::{ranked_bottlenecks, Bottleneck};
pub use checkpoint::{
    cluster_fingerprint, intern_obs_str, model_fingerprint, options_fingerprint, CheckpointError,
    SearchCheckpoint, StageCheckpoint, CHECKPOINT_SCHEMA_VERSION,
};
pub use primitives::{Candidate, Primitive, Resource, Trend};
pub use search::{
    AcesoSearch, ResumeError, ScoredConfig, SearchError, SearchOptions, SearchResult, SearchStep,
};
pub use trace::{AcceptedConfig, ConvergencePoint, IterationRecord, SearchTrace};
