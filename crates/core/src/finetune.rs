//! Op-level fine-tuning (paper §4.2).
//!
//! After each improving search iteration, two greedy op-level passes run
//! on the accepted configuration:
//!
//! 1. **Flexible tensor-parallel dimension** — try each operator's
//!    alternative partition dimensions (row↔column for matmuls,
//!    in↔out-channel for convolutions) and keep flips that improve the
//!    estimate.
//! 2. **Flexible in-stage tp/dp combination** — try converting the tp/dp
//!    mix of each stage's suffix `[k..]` (both directions) at a handful of
//!    cut points, accepting changes that pay for their resharding cost.

use crate::transform::{self, Mechanism};
use aceso_config::ParallelConfig;
use aceso_perf::Evaluator;

/// Runs both fine-tuning passes; returns a configuration scoring no worse
/// than the input, plus the number of configurations evaluated.
///
/// Generic over the scoring oracle so the search can pass its memoizing
/// [`aceso_perf::CachedEvaluator`] while tests and baselines keep using a
/// plain [`aceso_perf::PerfModel`].
pub fn fine_tune<E: Evaluator>(pm: &E, config: ParallelConfig) -> (ParallelConfig, usize) {
    let mut best = config;
    let mut best_score = pm.evaluate_unchecked(&best).score();
    let mut evals = 1usize;

    // Pass 1: partition-dimension flips, one greedy sweep.
    let model = pm.model();
    for si in 0..best.stages.len() {
        for j in 0..best.stages[si].ops.len() {
            let g = best.stages[si].op_start + j;
            let n_dims = model.ops[g].partitions.len();
            if n_dims < 2 || best.stages[si].ops[j].tp <= 1 {
                continue;
            }
            let cur = best.stages[si].ops[j].dim_index;
            for d in 0..n_dims as u8 {
                if d == cur {
                    continue;
                }
                let mut cand = best.clone();
                cand.stages[si].ops[j].dim_index = d;
                let score = pm.evaluate_unchecked(&cand).score();
                evals += 1;
                if score < best_score {
                    best = cand;
                    best_score = score;
                }
            }
        }
    }

    // Pass 2: suffix tp/dp conversions at sampled cut points.
    for si in 0..best.stages.len() {
        let n = best.stages[si].ops.len();
        let step = (n / 8).max(1);
        let mut start = 0usize;
        while start < n {
            for toward in [Mechanism::Tp, Mechanism::Dp] {
                if let Some(cand) = transform::convert_suffix(model, &best, si, start, toward) {
                    let score = pm.evaluate_unchecked(&cand).score();
                    evals += 1;
                    if score < best_score {
                        best = cand;
                        best_score = score;
                    }
                }
            }
            start += step;
        }
    }

    (best, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_cluster::ClusterSpec;
    use aceso_config::balanced_init;
    use aceso_config::validate::validate;
    use aceso_model::zoo::gpt3_custom;
    use aceso_perf::PerfModel;
    use aceso_profile::ProfileDb;

    #[test]
    fn fine_tune_never_regresses() {
        let m = gpt3_custom("t", 4, 512, 8, 256, 8192, 64);
        let c = ClusterSpec::v100(1, 8);
        let db = ProfileDb::build(&m, &c);
        let pm = PerfModel::new(&m, &c, &db);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let before = pm.evaluate_unchecked(&cfg).score();
        let (tuned, evals) = fine_tune(&pm, cfg);
        let after = pm.evaluate_unchecked(&tuned).score();
        assert!(after <= before);
        assert!(evals > 1);
        assert!(validate(&tuned, &m, &c).is_ok());
    }

    #[test]
    fn fine_tune_output_is_deterministic() {
        let m = gpt3_custom("t", 4, 512, 8, 256, 8192, 64);
        let c = ClusterSpec::v100(1, 8);
        let db = ProfileDb::build(&m, &c);
        let pm = PerfModel::new(&m, &c, &db);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let (a, _) = fine_tune(&pm, cfg.clone());
        let (b, _) = fine_tune(&pm, cfg);
        assert_eq!(a.semantic_hash(), b.semantic_hash());
    }
}
