//! Bottleneck identification (paper §3.1, Heuristic-1) and resource
//! ranking (first half of Heuristic-2).

use crate::primitives::Resource;
use aceso_perf::ConfigEstimate;

/// One identified bottleneck: a stage plus the resources to alleviate, in
/// exploration order.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// Stage index.
    pub stage: usize,
    /// Resources ranked by Heuristic-2's highest-consumption-proportion
    /// rule (memory forced first when the stage is over capacity).
    pub resources: Vec<Resource>,
}

/// Ranks candidate bottlenecks for a configuration (Heuristic-1).
///
/// * When any stage is out of memory, stages are ordered by memory
///   consumption, largest first ("safety first").
/// * Otherwise stages are ordered by per-stage iteration time, longest
///   first.
///
/// The first entry is the top-priority bottleneck; later entries are the
/// secondary bottlenecks the search falls back to when a multi-hop from
/// the top one fails (§3.2.3).
pub fn ranked_bottlenecks(est: &ConfigEstimate) -> Vec<Bottleneck> {
    let p = est.stages.len();
    let mut order: Vec<usize> = (0..p).collect();
    if est.oom() {
        order.sort_by(|&a, &b| est.stages[b].mem_total.cmp(&est.stages[a].mem_total));
    } else {
        order.sort_by(|&a, &b| {
            let ta = est.stages[a].stage_time + est.stages[a].dp_sync;
            let tb = est.stages[b].stage_time + est.stages[b].dp_sync;
            tb.partial_cmp(&ta).unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    order
        .into_iter()
        .map(|stage| Bottleneck {
            stage,
            resources: ranked_resources(est, stage),
        })
        .collect()
}

/// Orders the resources of one stage by consumption proportion: the
/// stage's share of the cluster-wide consumption of each resource
/// (Heuristic-2's highest-consumption-first rule). Memory is forced to the
/// front when the stage exceeds device capacity and dropped otherwise —
/// memory that fits is not a bottleneck.
pub fn ranked_resources(est: &ConfigEstimate, stage: usize) -> Vec<Resource> {
    let total_comp: f64 = est.stages.iter().map(|s| s.comp_per_mb()).sum();
    let total_comm: f64 = est.stages.iter().map(|s| s.comm_per_mb() + s.dp_sync).sum();
    let s = &est.stages[stage];
    let frac = |x: f64, total: f64| if total > 0.0 { x / total } else { 0.0 };
    let comp_frac = frac(s.comp_per_mb(), total_comp);
    let comm_frac = frac(s.comm_per_mb() + s.dp_sync, total_comm);

    let mut time_resources = vec![
        (Resource::Compute, comp_frac),
        (Resource::Communication, comm_frac),
    ];
    time_resources.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut out = Vec::with_capacity(3);
    if s.mem_total > est.mem_capacity {
        out.push(Resource::Memory);
    }
    out.extend(time_resources.into_iter().map(|(r, _)| r));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_perf::StageEstimate;

    fn stage(comp: f64, comm: f64, mem: u64) -> StageEstimate {
        StageEstimate {
            comp_fwd: comp / 3.0,
            comp_bwd: 2.0 * comp / 3.0,
            comm_fwd: comm / 2.0,
            comm_bwd: comm / 2.0,
            dp_sync: 0.0,
            mem_params: 0,
            mem_opt: 0,
            mem_act_per_mb: 0,
            in_flight: 1,
            mem_reserved: 0,
            mem_total: mem,
            stage_time: comp + comm,
        }
    }

    fn estimate(stages: Vec<StageEstimate>, cap: u64) -> ConfigEstimate {
        let (mut it, mut slow, mut mm, mut ms) = (0.0f64, 0, 0u64, 0);
        for (i, s) in stages.iter().enumerate() {
            if s.stage_time > it {
                it = s.stage_time;
                slow = i;
            }
            if s.mem_total > mm {
                mm = s.mem_total;
                ms = i;
            }
        }
        ConfigEstimate {
            stages,
            num_microbatches: 4,
            iteration_time: it,
            slowest_stage: slow,
            max_memory: mm,
            max_memory_stage: ms,
            mem_capacity: cap,
        }
    }

    #[test]
    fn oom_prioritises_memory_heavy_stage() {
        let est = estimate(
            vec![
                stage(5.0, 1.0, 10),
                stage(1.0, 0.2, 30),
                stage(2.0, 0.5, 15),
            ],
            20,
        );
        let bs = ranked_bottlenecks(&est);
        // Stage 1 is OOM → it comes first despite being fastest.
        assert_eq!(bs[0].stage, 1);
        assert_eq!(bs[0].resources[0], Resource::Memory);
        assert_eq!(bs[1].stage, 2);
    }

    #[test]
    fn non_oom_prioritises_slowest_stage() {
        let est = estimate(vec![stage(5.0, 1.0, 10), stage(1.0, 0.2, 15)], 20);
        let bs = ranked_bottlenecks(&est);
        assert_eq!(bs[0].stage, 0);
        // No memory pressure → memory not in the resource list.
        assert!(!bs[0].resources.contains(&Resource::Memory));
        assert_eq!(bs[0].resources[0], Resource::Compute);
    }

    #[test]
    fn communication_heavy_stage_ranks_comm_first() {
        let est = estimate(vec![stage(1.0, 4.0, 10), stage(1.0, 0.1, 10)], 20);
        let bs = ranked_bottlenecks(&est);
        assert_eq!(bs[0].stage, 0);
        assert_eq!(bs[0].resources[0], Resource::Communication);
    }

    #[test]
    fn secondary_bottlenecks_listed() {
        let est = estimate(
            vec![
                stage(3.0, 0.1, 10),
                stage(2.0, 0.1, 10),
                stage(1.0, 0.1, 10),
            ],
            20,
        );
        let bs = ranked_bottlenecks(&est);
        assert_eq!(bs.len(), 3);
        assert_eq!(bs[0].stage, 0);
        assert_eq!(bs[1].stage, 1);
        assert_eq!(bs[2].stage, 2);
    }
}
