//! Search instrumentation.
//!
//! Exp#5 (Fig. 11) needs the distribution of bottlenecks tried and hops
//! used per improving iteration; Exp#5–7 (Figs. 12–14) need convergence
//! curves (best found score over search time). The search records both
//! here with negligible overhead. The trace also keeps every accepted
//! configuration (with its fingerprint and score) and the hop bound the
//! search ran under, so `aceso-audit` can replay a finished search and
//! re-prove its invariants offline.

use aceso_config::ParallelConfig;

/// One search iteration's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// How many ranked bottlenecks were attempted before an improvement
    /// was found (1 = first try — Heuristic-1 was right).
    pub bottlenecks_tried: usize,
    /// Multi-hop depth of the improving primitive sequence.
    pub hops_used: usize,
    /// Whether the iteration improved the configuration at all.
    pub improved: bool,
}

/// A point on the convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Wall-clock seconds since the search started.
    pub elapsed: f64,
    /// Configurations evaluated so far.
    pub explored: usize,
    /// Best score (predicted iteration time, OOM-penalised) found so far.
    pub best_score: f64,
}

/// One configuration the search moved to (an accepted improvement).
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptedConfig {
    /// `semantic_hash` of the configuration at acceptance time.
    pub fingerprint: u64,
    /// Score (OOM-penalised predicted iteration time) at acceptance time.
    pub score: f64,
    /// The configuration itself, kept so an audit can re-validate and
    /// re-estimate it.
    pub config: ParallelConfig,
}

/// Full trace of one stage-count search.
#[derive(Debug, Clone, Default)]
pub struct SearchTrace {
    /// Pipeline stage count this search explored.
    pub stage_count: usize,
    /// `MaxHops` bound the search ran under (for hop-depth auditing).
    pub max_hops: usize,
    /// Score of the initial configuration (anchor of the monotone
    /// best-score invariant).
    pub initial_score: f64,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Convergence curve samples (one per iteration).
    pub convergence: Vec<ConvergencePoint>,
    /// Every configuration the search accepted, in order.
    pub accepted: Vec<AcceptedConfig>,
    /// Total configurations evaluated.
    pub explored: usize,
}

impl SearchTrace {
    /// Fraction of improving iterations that succeeded on the first
    /// bottleneck attempt (the paper reports 90%).
    pub fn first_try_fraction(&self) -> f64 {
        let improving: Vec<&IterationRecord> =
            self.iterations.iter().filter(|r| r.improved).collect();
        if improving.is_empty() {
            return 0.0;
        }
        improving
            .iter()
            .filter(|r| r.bottlenecks_tried == 1)
            .count() as f64
            / improving.len() as f64
    }

    /// Fraction of improving iterations that needed more than one hop (the
    /// paper reports 68%).
    pub fn multi_hop_fraction(&self) -> f64 {
        let improving: Vec<&IterationRecord> =
            self.iterations.iter().filter(|r| r.improved).collect();
        if improving.is_empty() {
            return 0.0;
        }
        improving.iter().filter(|r| r.hops_used > 1).count() as f64 / improving.len() as f64
    }

    /// Histogram of `bottlenecks_tried` over improving iterations.
    pub fn bottleneck_histogram(&self) -> Vec<(usize, usize)> {
        histogram(
            self.iterations
                .iter()
                .filter(|r| r.improved)
                .map(|r| r.bottlenecks_tried),
        )
    }

    /// Histogram of `hops_used` over improving iterations.
    pub fn hop_histogram(&self) -> Vec<(usize, usize)> {
        histogram(
            self.iterations
                .iter()
                .filter(|r| r.improved)
                .map(|r| r.hops_used),
        )
    }
}

fn histogram(values: impl Iterator<Item = usize>) -> Vec<(usize, usize)> {
    let mut map = std::collections::BTreeMap::new();
    for v in values {
        *map.entry(v).or_insert(0usize) += 1;
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> SearchTrace {
        SearchTrace {
            stage_count: 4,
            iterations: vec![
                IterationRecord {
                    bottlenecks_tried: 1,
                    hops_used: 1,
                    improved: true,
                },
                IterationRecord {
                    bottlenecks_tried: 1,
                    hops_used: 3,
                    improved: true,
                },
                IterationRecord {
                    bottlenecks_tried: 2,
                    hops_used: 2,
                    improved: true,
                },
                IterationRecord {
                    bottlenecks_tried: 3,
                    hops_used: 0,
                    improved: false,
                },
            ],
            explored: 10,
            ..SearchTrace::default()
        }
    }

    #[test]
    fn fractions_ignore_failed_iterations() {
        let t = trace();
        assert!((t.first_try_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.multi_hop_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histograms() {
        let t = trace();
        assert_eq!(t.bottleneck_histogram(), vec![(1, 2), (2, 1)]);
        assert_eq!(t.hop_histogram(), vec![(1, 1), (2, 1), (3, 1)]);
    }

    #[test]
    fn empty_trace_fractions_are_zero() {
        let t = SearchTrace::default();
        assert_eq!(t.first_try_fraction(), 0.0);
        assert_eq!(t.multi_hop_fraction(), 0.0);
    }
}
