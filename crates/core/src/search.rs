//! The Aceso search: Algorithm 1 (iterative loop) and Algorithm 2
//! (multi-hop search), run in parallel over pipeline stage counts (§4.3).

use crate::bottleneck::{ranked_bottlenecks, Bottleneck};
use crate::checkpoint::{
    cluster_fingerprint, model_fingerprint, options_fingerprint, CheckpointError,
    CheckpointedScore, ParkedConfig, SearchCheckpoint, StageCheckpoint, StageProgress,
    CHECKPOINT_SCHEMA_VERSION,
};
use crate::finetune::fine_tune;
use crate::frontier::{
    run_wave_task, CandEval, FrontierPool, ShardedVisited, TaskResult, WaveTask,
};
use crate::primitives::{generate_with, Candidate, GenOptions, Primitive, Resource};
use crate::trace::{AcceptedConfig, ConvergencePoint, IterationRecord, SearchTrace};
use aceso_cluster::ClusterSpec;
use aceso_config::{balanced_init, ConfigError, ParallelConfig};
use aceso_model::ModelGraph;
use aceso_obs::{Counter, Event, HistKind, Metrics, ObsReport, Recorder};
use aceso_perf::{CachedEvaluator, ConfigEstimate, Evaluator, P2pMemo, PerfModel};
use aceso_profile::ProfileDb;
use aceso_util::SplitMix64;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunable knobs of the search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Maximum multi-hop depth (`MaxHops`, paper default 7).
    pub max_hops: usize,
    /// Iteration budget per stage count (deterministic budget).
    pub max_iterations: usize,
    /// Optional wall-clock budget shared by all stage counts (the paper
    /// uses 200 s); `None` = iterations only.
    pub time_budget: Option<Duration>,
    /// Pipeline stage counts to search (in parallel); `None` = automatic.
    pub stage_counts: Option<Vec<usize>>,
    /// How many best configurations to return (paper keeps the top 5 and
    /// picks the best in real execution).
    pub top_k: usize,
    /// Run the op-level fine-tuning pass (§4.2).
    pub fine_tune: bool,
    /// Heuristic-2 ranking; `false` = random primitive order (Exp#5
    /// ablation).
    pub use_heuristic2: bool,
    /// RNG seed (only consumed when `use_heuristic2` is off).
    pub seed: u64,
    /// Search stage counts on parallel threads.
    pub parallel: bool,
    /// Backtracking breadth per hop (candidates recursed into).
    pub branch_limit: usize,
    /// Secondary bottlenecks attempted per iteration.
    pub max_bottlenecks: usize,
    /// §4.3 primitive-combination toggles (ablation knobs).
    pub gen_options: GenOptions,
    /// Start from this configuration instead of the balanced default
    /// (Exp#7 robustness); forces its stage count.
    pub initial: Option<ParallelConfig>,
    /// Frontier worker threads per stage-count sub-search (the
    /// work-stealing pool of `docs/SEARCH.md`). `0` = automatic: the
    /// `ACESO_SEARCH_THREADS` environment variable when set, else 1
    /// (the serial path). Clamped to `1..=64` by
    /// [`SearchOptions::resolved_threads`]. This knob never affects
    /// results — outputs are bit-identical at every worker count — so
    /// it is deliberately *not* part of the checkpoint options
    /// fingerprint and a checkpoint may be resumed at a different
    /// worker count.
    pub search_threads: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            max_hops: 7,
            max_iterations: 48,
            time_budget: None,
            stage_counts: None,
            top_k: 5,
            fine_tune: true,
            use_heuristic2: true,
            seed: 0x000A_CE50,
            parallel: true,
            branch_limit: 3,
            max_bottlenecks: 3,
            gen_options: GenOptions::default(),
            initial: None,
            search_threads: 0,
        }
    }
}

impl SearchOptions {
    /// Resolves [`SearchOptions::search_threads`] to an actual worker
    /// count: an explicit value wins, `0` consults the
    /// `ACESO_SEARCH_THREADS` environment variable, and anything else
    /// falls back to 1 (the serial path). The result is clamped to
    /// `1..=64`.
    pub fn resolved_threads(&self) -> usize {
        let requested = if self.search_threads != 0 {
            self.search_threads
        } else {
            std::env::var("ACESO_SEARCH_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(1)
        };
        requested.clamp(1, 64)
    }
}

/// A configuration with its predicted quality.
#[derive(Debug, Clone)]
pub struct ScoredConfig {
    /// The configuration.
    pub config: ParallelConfig,
    /// Comparison score (iteration time, OOM-penalised).
    pub score: f64,
    /// Predicted iteration time in seconds.
    pub iteration_time: f64,
    /// Whether the prediction exceeds device memory.
    pub oom: bool,
}

/// Search failure modes.
#[derive(Debug)]
pub enum SearchError {
    /// No stage count admitted a valid initial configuration.
    NoInitialConfig(ConfigError),
    /// The search finished without any feasible configuration.
    NoFeasibleConfig,
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::NoInitialConfig(e) => write!(f, "no valid initial configuration: {e}"),
            SearchError::NoFeasibleConfig => write!(f, "no feasible configuration found"),
        }
    }
}

impl std::error::Error for SearchError {}

/// Result of a full search.
#[derive(Debug)]
pub struct SearchResult {
    /// The best configuration found.
    pub best_config: ParallelConfig,
    /// Its predicted iteration time (seconds).
    pub best_time: f64,
    /// Whether even the best configuration is predicted OOM.
    pub best_oom: bool,
    /// The `top_k` best configurations across all stage counts.
    pub top_configs: Vec<ScoredConfig>,
    /// Total configurations evaluated.
    pub explored: usize,
    /// Wall-clock search time.
    pub wall_time: Duration,
    /// Per-stage-count traces.
    pub traces: Vec<SearchTrace>,
}

/// Outcome of a pausable search slice ([`AcesoSearch::run_partial`] /
/// [`AcesoSearch::resume_partial`]).
#[derive(Debug)]
// `Done` is the one-shot terminal value; boxing it would add an allocation
// to every completed search to shrink a type that is never stored in bulk.
#[allow(clippy::large_enum_variant)]
pub enum SearchStep {
    /// Every stage count ran to completion; the result and report are
    /// bit-identical to an uninterrupted [`AcesoSearch::run_observed`].
    Done(SearchResult, ObsReport),
    /// At least one stage count hit the pause bound; the checkpoint
    /// captures the complete search state.
    Paused(Box<SearchCheckpoint>),
}

/// Why a checkpoint resume failed.
#[derive(Debug)]
pub enum ResumeError {
    /// The checkpoint does not belong to this search (wrong model,
    /// cluster, options, metrics flag, or schema version).
    Incompatible(CheckpointError),
    /// The resumed search itself failed.
    Search(SearchError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Incompatible(e) => write!(f, "cannot resume: {e}"),
            ResumeError::Search(e) => write!(f, "resumed search failed: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Min-heap entry for the unexplored-configurations pool. The config is
/// shared (`Arc`) with the multi-hop recursion pool so a rejected
/// candidate is never deep-cloned just to be parked here.
struct HeapEntry {
    score: f64,
    tie: u64,
    config: Arc<ParallelConfig>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.tie == other.tie
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest score.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

/// The Aceso configuration searcher.
pub struct AcesoSearch<'a> {
    model: &'a ModelGraph,
    cluster: &'a ClusterSpec,
    db: &'a ProfileDb,
    options: SearchOptions,
}

impl<'a> AcesoSearch<'a> {
    /// Creates a searcher.
    pub fn new(
        model: &'a ModelGraph,
        cluster: &'a ClusterSpec,
        db: &'a ProfileDb,
        options: SearchOptions,
    ) -> Self {
        Self {
            model,
            cluster,
            db,
            options,
        }
    }

    /// Stage counts to explore: every count from 1 to the device count
    /// that admits a power-of-two split, capped at the op count, thinned
    /// to at most 10 entries.
    fn default_stage_counts(&self) -> Vec<usize> {
        let gpus = self.cluster.total_gpus();
        let max_p = gpus.min(self.model.len() / 2).max(1);
        let mut counts: Vec<usize> = (1..=max_p.min(16)).collect();
        if counts.len() > 10 {
            // Keep 1–8 plus even counts beyond.
            counts.retain(|&p| p <= 8 || p % 2 == 0);
            counts.truncate(12);
        }
        counts
    }

    /// Runs the search (Algorithm 1, parallelised over stage counts).
    pub fn run(&self) -> Result<SearchResult, SearchError> {
        self.run_observed(false).map(|(r, _)| r)
    }

    /// Runs the search with observability: when `metrics` is on, every
    /// sub-search records events and counters into a per-thread
    /// [`Recorder`] (no locks on the hot path) and the recorders are
    /// merged in stage-count order — so the returned [`ObsReport`]'s
    /// event stream is byte-identical across identical seeded runs.
    /// When `metrics` is off the instrumentation compiles down to a
    /// branch per site and the report comes back empty.
    pub fn run_observed(&self, metrics: bool) -> Result<(SearchResult, ObsReport), SearchError> {
        match self.drive(metrics, None, None)? {
            SearchStep::Done(result, report) => Ok((result, report)),
            SearchStep::Paused(_) => unreachable!("no pause bound was set"),
        }
    }

    /// Runs the search until every stage count finishes or reaches
    /// iteration `pause_after`, whichever comes first. On pause the
    /// returned [`SearchCheckpoint`] captures the complete state;
    /// feeding it to [`AcesoSearch::resume_partial`] continues exactly
    /// where the slice stopped, and running resumed slices to completion
    /// yields results bit-identical to an uninterrupted run.
    pub fn run_partial(
        &self,
        metrics: bool,
        pause_after: usize,
    ) -> Result<SearchStep, SearchError> {
        self.drive(metrics, None, Some(pause_after))
    }

    /// Checks that `ckpt` was produced by a search over the same model,
    /// cluster, result-affecting options, and metrics flag.
    pub fn checkpoint_compatible(
        &self,
        ckpt: &SearchCheckpoint,
        metrics: bool,
    ) -> Result<(), CheckpointError> {
        if ckpt.schema_version != CHECKPOINT_SCHEMA_VERSION {
            return Err(CheckpointError::UnknownSchemaVersion(ckpt.schema_version));
        }
        if ckpt.model_fingerprint != model_fingerprint(self.model) {
            return Err(CheckpointError::Mismatch("model fingerprint"));
        }
        if ckpt.cluster_fingerprint != cluster_fingerprint(self.cluster) {
            return Err(CheckpointError::Mismatch("cluster fingerprint"));
        }
        if ckpt.options_fingerprint != options_fingerprint(&self.options) {
            return Err(CheckpointError::Mismatch("options fingerprint"));
        }
        if ckpt.metrics != metrics {
            return Err(CheckpointError::Mismatch("metrics flag"));
        }
        Ok(())
    }

    /// Resumes from a checkpoint, running until every stage finishes or
    /// reaches the (absolute) iteration bound `pause_after`; `None`
    /// runs to completion. Fails with [`ResumeError::Incompatible`]
    /// before doing any work when the checkpoint belongs to a different
    /// search.
    pub fn resume_partial(
        &self,
        metrics: bool,
        ckpt: &SearchCheckpoint,
        pause_after: Option<usize>,
    ) -> Result<SearchStep, ResumeError> {
        self.checkpoint_compatible(ckpt, metrics)
            .map_err(ResumeError::Incompatible)?;
        self.drive(metrics, Some(ckpt), pause_after)
            .map_err(ResumeError::Search)
    }

    /// Resumes from a checkpoint and runs to completion. The result and
    /// report are bit-identical to an uninterrupted
    /// [`AcesoSearch::run_observed`] with the same inputs.
    pub fn resume_from(
        &self,
        metrics: bool,
        ckpt: &SearchCheckpoint,
    ) -> Result<(SearchResult, ObsReport), ResumeError> {
        match self.resume_partial(metrics, ckpt, None)? {
            SearchStep::Done(result, report) => Ok((result, report)),
            SearchStep::Paused(_) => unreachable!("no pause bound was set"),
        }
    }

    /// The engine behind [`AcesoSearch::run_observed`] and the partial
    /// variants: drives every stage count either fresh or from its
    /// checkpointed state, to completion or to the pause bound.
    fn drive(
        &self,
        metrics: bool,
        restore: Option<&SearchCheckpoint>,
        pause_after: Option<usize>,
    ) -> Result<SearchStep, SearchError> {
        let start = Instant::now();
        let prior_elapsed = restore.map_or(0.0, SearchCheckpoint::elapsed_secs);
        // A resumed search gets the *remaining* budget: previous slices'
        // wall time already counted against it.
        let deadline = self.options.time_budget.map(|b| {
            let remaining = (b.as_secs_f64() - prior_elapsed).max(0.0);
            start + Duration::from_secs_f64(remaining)
        });
        let counts = match (&self.options.initial, &self.options.stage_counts) {
            (Some(init), _) => vec![init.num_stages()],
            (None, Some(c)) => c.clone(),
            (None, None) => self.default_stage_counts(),
        };

        let head_events: Vec<Event> = match restore {
            Some(c) => c.head_events.clone(),
            None => {
                let head = Recorder::new(metrics);
                head.emit(|| Event::SearchStart {
                    stage_counts: counts.clone(),
                    max_hops: self.options.max_hops,
                    max_iterations: self.options.max_iterations,
                    top_k: self.options.top_k,
                    seed: self.options.seed,
                    heuristic2: self.options.use_heuristic2,
                });
                head.into_parts().0
            }
        };
        let restored: HashMap<usize, &StageCheckpoint> = restore
            .map(|c| c.stages.iter().map(|s| (s.stage_count, s)).collect())
            .unwrap_or_default();

        let mut outcomes: Vec<StageOutcome> = Vec::new();
        // One boundary-p2p memo for the whole search: sub-searches at
        // different stage counts cut the model at many of the same device
        // boundaries, so whichever thread computes a (bytes, from, to)
        // triple first serves every other thread. Values are exact
        // `ProfileDb::p2p_time` results — sharing cannot change any score,
        // so it is deliberately *not* checkpointed (a cold memo on resume
        // recomputes identical values and touches no counter).
        let p2p = P2pMemo::new();
        if self.options.parallel && counts.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = counts
                    .iter()
                    .map(|&p| {
                        let p2p = &p2p;
                        let prev = restored.get(&p).copied();
                        scope.spawn(move || {
                            self.stage_slice(p, deadline, metrics, p2p, prev, pause_after)
                        })
                    })
                    .collect();
                for h in handles {
                    if let Ok(Some(o)) = h.join() {
                        outcomes.push(o);
                    }
                }
            });
        } else {
            for &p in &counts {
                let prev = restored.get(&p).copied();
                if let Some(o) = self.stage_slice(p, deadline, metrics, &p2p, prev, pause_after) {
                    outcomes.push(o);
                }
            }
        }
        // Deterministic merge order regardless of thread completion order.
        outcomes.sort_by_key(StageOutcome::stage_count);

        if outcomes
            .iter()
            .any(|o| matches!(o, StageOutcome::Paused(_)))
        {
            let elapsed = prior_elapsed + start.elapsed().as_secs_f64();
            let stages = outcomes
                .into_iter()
                .map(|o| match o {
                    // Steal counts are dropped on the pause path: they are
                    // scheduling-dependent and must never enter checkpoint
                    // bytes (docs/SEARCH.md, INV-STEALS).
                    StageOutcome::Finished {
                        tops, trace, rec, ..
                    } => {
                        let (events, mets) = rec.into_parts();
                        StageCheckpoint {
                            stage_count: trace.stage_count,
                            done: true,
                            events,
                            metrics: mets,
                            trace,
                            progress: None,
                            tops: tops.iter().map(CheckpointedScore::from_scored).collect(),
                        }
                    }
                    StageOutcome::Paused(sc) => sc,
                })
                .collect();
            return Ok(SearchStep::Paused(Box::new(SearchCheckpoint {
                schema_version: CHECKPOINT_SCHEMA_VERSION,
                model_fingerprint: model_fingerprint(self.model),
                cluster_fingerprint: cluster_fingerprint(self.cluster),
                options_fingerprint: options_fingerprint(&self.options),
                metrics,
                elapsed_secs_bits: elapsed.to_bits(),
                search_threads: self.options.resolved_threads() as u64,
                head_events,
                stages,
            })));
        }

        let mut report = ObsReport::new();
        report.absorb(Recorder::from_parts(head_events, Metrics::default()));
        let mut all: Vec<ScoredConfig> = Vec::new();
        let mut traces = Vec::new();
        let mut explored = 0usize;
        let mut total_steals = 0u64;
        for o in outcomes {
            let StageOutcome::Finished {
                tops,
                trace,
                rec,
                steals,
            } = o
            else {
                unreachable!("paused outcomes already returned a checkpoint")
            };
            explored += trace.explored;
            total_steals += steals;
            traces.push(trace);
            all.extend(tops);
            report.absorb(rec);
        }
        all.sort_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        all.truncate(self.options.top_k.max(1));
        let best = all.first().ok_or(SearchError::NoFeasibleConfig)?.clone();

        let tail = Recorder::new(metrics);
        tail.emit(|| Event::SearchEnd {
            explored,
            stage_counts_searched: traces.len(),
            best_score: best.score,
            best_fingerprint: best.config.semantic_hash(),
        });
        // `search_steals` is the one scheduling-dependent counter: it is
        // only folded in when the whole search completes, never enters a
        // checkpoint, and is masked by every determinism comparison.
        tail.add(Counter::SearchSteals, total_steals);
        report.absorb(tail);
        report.set_wall_time(prior_elapsed + start.elapsed().as_secs_f64());

        Ok(SearchStep::Done(
            SearchResult {
                best_config: best.config,
                best_time: best.iteration_time,
                best_oom: best.oom,
                top_configs: all,
                explored,
                wall_time: Duration::from_secs_f64(prior_elapsed) + start.elapsed(),
                traces,
            },
            report,
        ))
    }

    /// One stage-count search slice (Algorithm 1): fresh or restored
    /// from `prev`, running to completion or to the `pause_after`
    /// iteration bound.
    ///
    /// With `search_threads > 1` this wraps the slice body in a
    /// work-stealing frontier pool (`docs/SEARCH.md`): speculative
    /// workers generate and pre-score candidate waves while the body —
    /// the *reducer* — replays their results in canonical order, so the
    /// outcome is bit-identical to the serial path at any worker count.
    fn stage_slice(
        &self,
        p: usize,
        deadline: Option<Instant>,
        metrics: bool,
        p2p: &P2pMemo,
        prev: Option<&StageCheckpoint>,
        pause_after: Option<usize>,
    ) -> Option<StageOutcome> {
        let env = SliceEnv {
            p,
            deadline,
            metrics,
            pause_after,
        };
        let workers = self.options.resolved_threads();
        // The visited set lives outside the worker scope so workers can
        // consult it while evaluating speculatively; only the reducer
        // writes to it, and only while workers idle at a wave barrier
        // (docs/SEARCH.md, INV-VISITED).
        let visited = ShardedVisited::new();
        if workers <= 1 {
            return self.stage_slice_body(env, p2p, prev, &visited, None);
        }
        let pool: FrontierPool<WaveTask, TaskResult> = FrontierPool::new(workers);
        // Each worker owns a private memoizing evaluator. It shares the
        // search-wide p2p memo (exact values — sharing cannot change a
        // score) but *no* recorder: all observability flows through the
        // reducer's canonical evaluator during trace replay (INV-MEMO).
        let factory = |_idx: usize| {
            let ev = CachedEvaluator::new(
                PerfModel::new(self.model, self.cluster, self.db).with_p2p_memo(p2p),
            );
            let visited = &visited;
            move |task: &WaveTask| run_wave_task(&ev, visited, task)
        };
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &factory);
            let mut out = self.stage_slice_body(env, p2p, prev, &visited, Some(&pool));
            pool.shutdown();
            if let Some(StageOutcome::Finished { steals, .. }) = &mut out {
                *steals = pool.steals();
            }
            out
        })
    }

    /// The slice body — Algorithm 1 proper. Runs on the reducer thread;
    /// `pool` is `Some` when speculative frontier workers are attached.
    fn stage_slice_body(
        &self,
        env: SliceEnv,
        p2p: &P2pMemo,
        prev: Option<&StageCheckpoint>,
        visited: &ShardedVisited,
        wpool: Option<&FrontierPool<WaveTask, TaskResult>>,
    ) -> Option<StageOutcome> {
        let SliceEnv {
            p,
            deadline,
            metrics,
            pause_after,
        } = env;
        // A stage that already finished in a previous slice replays its
        // saved outcome verbatim — its events, metrics, trace, and
        // bit-exact top-k pool re-enter the merge unchanged.
        if let Some(sc) = prev {
            if sc.done {
                return Some(StageOutcome::Finished {
                    tops: sc.tops.iter().map(CheckpointedScore::to_scored).collect(),
                    trace: sc.trace.clone(),
                    rec: Recorder::from_parts(sc.events.clone(), sc.metrics.clone()),
                    steals: 0,
                });
            }
        }
        let progress = prev.and_then(|sc| sc.progress.as_ref());
        // The recorder outlives everything that borrows it (`ev`, `ctx`);
        // it is returned by value to the parent for deterministic merging.
        // Resuming splices the restored slice onto the saved stream: the
        // events and metrics recorded so far are pre-loaded, so the merged
        // output equals an uninterrupted run's. (With metrics off the
        // saved parts are empty by construction — the checkpoint's
        // `metrics` flag is enforced before resuming.)
        let rec = match (progress.is_some(), metrics) {
            (true, true) => {
                let sc = prev.expect("progress implies a previous checkpoint");
                Recorder::from_parts(sc.events.clone(), sc.metrics.clone())
            }
            _ => Recorder::new(metrics),
        };
        // Per-thread memoizing evaluator: primitives touch at most two
        // stages, so most candidate scores reuse cached stage estimates
        // (bit-identical to scoring from scratch). Boundary p2p estimates
        // additionally go through the search-wide shared memo.
        let ev = CachedEvaluator::new(
            PerfModel::new(self.model, self.cluster, self.db)
                .with_obs(&rec)
                .with_p2p_memo(p2p),
        );
        let start = Instant::now();
        let mut ctx = Ctx {
            ev,
            opts: &self.options,
            rec: &rec,
            stage_count: p,
            visited,
            pool: wpool,
            unexplored: BinaryHeap::new(),
            explored: 0,
            deadline,
            rng: SplitMix64::new(self.options.seed ^ (p as u64)),
            tie_counter: 0,
        };
        let mut trace;
        let mut config;
        let mut best;
        let mut iter;
        match progress {
            Some(pr) => {
                // Restore every piece of mutable sub-search state
                // bit-exactly; nothing is re-evaluated here, so no
                // counter moves until the loop resumes.
                trace = prev
                    .expect("progress implies a previous checkpoint")
                    .trace
                    .clone();
                config = pr.current.clone();
                best = pr.best.to_scored();
                iter = pr.next_iter;
                for h in &pr.visited {
                    visited.insert(*h);
                }
                for e in &pr.unexplored {
                    ctx.unexplored.push(HeapEntry {
                        score: f64::from_bits(e.score_bits),
                        tie: e.tie,
                        config: Arc::new(e.config.clone()),
                    });
                }
                ctx.explored = pr.explored;
                ctx.rng = SplitMix64::from_state(pr.rng_state);
                ctx.tie_counter = pr.tie_counter;
                ctx.ev.import_memo(pr.memo.clone());
            }
            None => {
                let init = match &self.options.initial {
                    Some(c) if c.num_stages() == p => c.clone(),
                    _ => balanced_init(self.model, self.cluster, p).ok()?,
                };
                trace = SearchTrace {
                    stage_count: p,
                    max_hops: self.options.max_hops,
                    ..SearchTrace::default()
                };
                config = init;
                ctx.visited.insert(config.semantic_hash());
                best = ctx.scored(&config);
                trace.initial_score = best.score;
                ctx.explored += 1;
                rec.count(Counter::StageSearches);
                rec.emit(|| Event::StageStart {
                    stage_count: p,
                    init_fingerprint: config.semantic_hash(),
                    init_score: best.score,
                });
                iter = 0;
            }
        }

        let mut paused = false;
        while iter < self.options.max_iterations {
            if pause_after.is_some_and(|bound| iter >= bound) {
                paused = true;
                break;
            }
            if ctx.expired() {
                break;
            }
            let est = ctx.ev.evaluate_unchecked(&config);
            let init_score = est.score();
            let bottlenecks = ranked_bottlenecks(&est);
            let mut found: Option<(ParallelConfig, usize)> = None;
            let mut tried = 0usize;
            for b in bottlenecks.iter().take(self.options.max_bottlenecks) {
                tried += 1;
                rec.emit(|| Event::Bottleneck {
                    stage_count: p,
                    iteration: iter,
                    stage: b.stage,
                    resource: b.resources.first().map_or("-", |r| r.name()),
                });
                if let Some(hit) = ctx.multi_hop(&config, &est, 0, b, init_score) {
                    found = Some(hit);
                    break;
                }
            }
            trace.iterations.push(IterationRecord {
                bottlenecks_tried: tried,
                hops_used: found.as_ref().map_or(0, |(_, h)| *h),
                improved: found.is_some(),
            });
            rec.count(Counter::IterationsTotal);
            if found.is_some() {
                rec.count(Counter::IterationsImproved);
            }
            rec.emit(|| Event::Iteration {
                stage_count: p,
                iteration: iter,
                bottlenecks_tried: tried,
                hops_used: found.as_ref().map_or(0, |(_, h)| *h),
                improved: found.is_some(),
            });
            match found {
                Some((mut next, _)) => {
                    if self.options.fine_tune {
                        let pre_hash = next.semantic_hash();
                        let (tuned, evals) = fine_tune(&ctx.ev, next.clone());
                        ctx.explored += evals;
                        rec.add(Counter::FinetuneEvals, evals as u64);
                        // Only adopt the tuned configuration when it is new
                        // (or a no-op): tuning two different configurations
                        // to the same optimum must not make the search
                        // accept one fingerprint twice.
                        let tuned_hash = tuned.semantic_hash();
                        let adopted = tuned_hash == pre_hash || ctx.visited.insert(tuned_hash);
                        rec.emit(|| Event::Finetune {
                            stage_count: p,
                            evaluations: evals,
                            fingerprint: tuned_hash,
                            adopted,
                        });
                        if adopted {
                            next = tuned;
                        }
                    }
                    crate::invariants::assert_valid(
                        self.model,
                        self.cluster,
                        &next,
                        "search accept",
                    );
                    let scored = ctx.scored(&next);
                    trace.accepted.push(AcceptedConfig {
                        fingerprint: next.semantic_hash(),
                        score: scored.score,
                        config: next.clone(),
                    });
                    if scored.score < best.score {
                        best = scored;
                    }
                    config = next;
                }
                None => match ctx.unexplored.pop() {
                    Some(e) => {
                        rec.count(Counter::Backtracks);
                        rec.emit(|| Event::Backtrack {
                            stage_count: p,
                            fingerprint: e.config.semantic_hash(),
                            score: e.score,
                        });
                        config = Arc::try_unwrap(e.config).unwrap_or_else(|a| (*a).clone());
                    }
                    None => break,
                },
            }
            // Wall-clock only (never part of bit-identity): on a resumed
            // slice the clock restarts, so convergence timestamps are
            // per-slice, not cumulative.
            trace.convergence.push(ConvergencePoint {
                elapsed: start.elapsed().as_secs_f64(),
                explored: ctx.explored,
                best_score: best.score,
            });
            iter += 1;
        }

        if paused {
            let memo = ctx.ev.export_memo();
            // Canonical orders: the sharded visited set exports sorted,
            // and the heap's internal arrangement depends on insertion
            // history — both must serialise to the same bytes however
            // the slice got here (and at whatever worker count).
            let parked_visited = visited.export_sorted();
            let unexplored: Vec<ParkedConfig> = std::mem::take(&mut ctx.unexplored)
                .into_sorted_vec()
                .into_iter()
                .map(|e| ParkedConfig {
                    score_bits: e.score.to_bits(),
                    tie: e.tie,
                    config: Arc::try_unwrap(e.config).unwrap_or_else(|a| (*a).clone()),
                })
                .collect();
            let progress = StageProgress {
                next_iter: iter,
                current: config,
                best: CheckpointedScore::from_scored(&best),
                visited: parked_visited,
                unexplored,
                explored: ctx.explored,
                tie_counter: ctx.tie_counter,
                rng_state: ctx.rng.state(),
                memo,
            };
            drop(ctx);
            let (events, mets) = rec.into_parts();
            return Some(StageOutcome::Paused(StageCheckpoint {
                stage_count: p,
                done: false,
                events,
                metrics: mets,
                trace,
                progress: Some(progress),
                tops: Vec::new(),
            }));
        }

        trace.explored = ctx.explored;
        rec.emit(|| Event::StageEnd {
            stage_count: p,
            iterations: trace.iterations.len(),
            explored: ctx.explored,
            best_score: best.score,
            best_fingerprint: best.config.semantic_hash(),
        });
        // Return the best plus the best few unexplored leftovers as the
        // top-k pool for this stage count.
        let mut tops = vec![best];
        for _ in 0..self.options.top_k {
            match ctx.unexplored.pop() {
                Some(e) => tops.push(ctx.scored(&e.config)),
                None => break,
            }
        }
        drop(ctx);
        // `steals` is filled in by the wrapper once the pool winds down.
        Some(StageOutcome::Finished {
            tops,
            trace,
            rec,
            steals: 0,
        })
    }
}

/// Per-slice parameters threaded from [`AcesoSearch::stage_slice`] into
/// its body (bundled to keep the signatures small).
#[derive(Clone, Copy)]
struct SliceEnv {
    p: usize,
    deadline: Option<Instant>,
    metrics: bool,
    pause_after: Option<usize>,
}

/// Outcome of one stage-count slice.
enum StageOutcome {
    /// The sub-search ran to its natural end this slice (or had already
    /// finished in a previous one).
    Finished {
        tops: Vec<ScoredConfig>,
        trace: SearchTrace,
        rec: Recorder,
        /// Work-steal count of this slice's frontier pool. Scheduling-
        /// dependent: folded into the final report only on the Done
        /// path, never checkpointed (docs/SEARCH.md, INV-STEALS).
        steals: u64,
    },
    /// The sub-search hit the pause bound.
    Paused(StageCheckpoint),
}

impl StageOutcome {
    fn stage_count(&self) -> usize {
        match self {
            StageOutcome::Finished { trace, .. } => trace.stage_count,
            StageOutcome::Paused(sc) => sc.stage_count,
        }
    }
}

/// Mutable state of one stage-count search.
struct Ctx<'a> {
    /// The canonical evaluator: the only one that records observability,
    /// and the one whose memo state is checkpointed. Worker evaluations
    /// reach it exclusively via trace replay, in canonical order.
    ev: CachedEvaluator<'a>,
    opts: &'a SearchOptions,
    rec: &'a Recorder,
    stage_count: usize,
    visited: &'a ShardedVisited,
    /// Speculative frontier workers, when `search_threads > 1`.
    pool: Option<&'a FrontierPool<WaveTask, TaskResult>>,
    unexplored: BinaryHeap<HeapEntry>,
    explored: usize,
    deadline: Option<Instant>,
    rng: SplitMix64,
    tie_counter: u64,
}

/// One (bottleneck, resource) generation step of a multi-hop call —
/// the unit that fans out as a wave of per-primitive tasks.
struct HopStep<'h> {
    config: &'h ParallelConfig,
    est: &'h ConfigEstimate,
    hop: usize,
    bottleneck: &'h Bottleneck,
    init_score: f64,
    resource: Resource,
}

/// Rejected candidates pooled for the bounded multi-hop recursion:
/// (score, primitives applied, config shared with the heap, estimate).
type PoolEntry = (f64, usize, Arc<ParallelConfig>, ConfigEstimate);

impl Ctx<'_> {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn scored(&self, config: &ParallelConfig) -> ScoredConfig {
        let est = self.ev.evaluate_unchecked(config);
        ScoredConfig {
            config: config.clone(),
            score: est.score(),
            iteration_time: est.iteration_time,
            oom: est.oom(),
        }
    }

    /// Algorithm 2: multi-hop search from `config` toward any configuration
    /// scoring better than `init_score`. Returns the configuration and the
    /// hop depth that reached it.
    ///
    /// Candidate generation within one (bottleneck, resource) step is a
    /// *wave* of per-primitive tasks. With one worker the wave runs
    /// inline in canonical order; with more it fans out over the
    /// work-stealing pool and the results are replayed in task-ordinal
    /// order, keeping every observable effect bit-identical to the
    /// serial path (docs/SEARCH.md, INV-ORDINAL).
    fn multi_hop(
        &mut self,
        config: &ParallelConfig,
        est: &ConfigEstimate,
        hop: usize,
        bottleneck: &Bottleneck,
        init_score: f64,
    ) -> Option<(ParallelConfig, usize)> {
        if hop >= self.opts.max_hops || self.expired() {
            return None;
        }
        let mut resources = bottleneck.resources.clone();
        if !self.opts.use_heuristic2 {
            self.rng.shuffle(&mut resources);
        }
        for resource in resources {
            let mut prims: Vec<Primitive> = if self.opts.gen_options.enable_zero {
                Primitive::eligible_for_extended(resource)
            } else {
                Primitive::eligible_for(resource)
            };
            if !self.opts.use_heuristic2 {
                self.rng.shuffle(&mut prims);
            }
            let step = HopStep {
                config,
                est,
                hop,
                bottleneck,
                init_score,
                resource,
            };
            // Generate and score every candidate of every eligible
            // primitive (Heuristic-2's best-performance-first needs the
            // estimates anyway). Rejected candidates land in `pool` for
            // the bounded recursion below, sharing their config with the
            // backtracking heap via `Arc` (no deep clones on this path).
            let mut pool: Vec<PoolEntry> = Vec::new();
            let hit = match self.pool {
                Some(wp) => self.hop_resource_waved(wp, &step, &prims, &mut pool),
                None => self.hop_resource_serial(&step, &prims, &mut pool),
            };
            if hit.is_some() {
                return hit;
            }
            if self.opts.use_heuristic2 {
                pool.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            } else {
                // Fisher–Yates over indices to keep the pool order random
                // (the exact index permutation is part of the rng-stream
                // bit-identity contract), permuting by moving entries
                // instead of cloning them.
                let mut idx: Vec<usize> = (0..pool.len()).collect();
                self.rng.shuffle(&mut idx);
                let mut slots: Vec<Option<PoolEntry>> = pool.into_iter().map(Some).collect();
                pool = idx
                    .into_iter()
                    .map(|i| slots[i].take().expect("indices form a permutation"))
                    .collect();
            }
            for (_, applied, ccfg, cest) in pool.into_iter().take(self.opts.branch_limit) {
                let next_bottlenecks = ranked_bottlenecks(&cest);
                if let Some(b) = next_bottlenecks.first() {
                    if let Some(hit) = self.multi_hop(&ccfg, &cest, hop + applied, b, init_score) {
                        return Some(hit);
                    }
                }
            }
        }
        None
    }

    /// The canonical serial execution of one generation step: task by
    /// task in primitive order, generating and scoring lazily with the
    /// canonical evaluator.
    fn hop_resource_serial(
        &mut self,
        step: &HopStep<'_>,
        prims: &[Primitive],
        pool: &mut Vec<PoolEntry>,
    ) -> Option<(ParallelConfig, usize)> {
        for &prim in prims {
            self.rec.count(Counter::SearchWorkerBatches);
            for cand in generate_with(
                &self.ev,
                step.config,
                step.est,
                prim,
                step.bottleneck.stage,
                step.resource,
                self.opts.gen_options,
            ) {
                let h = cand.config.semantic_hash();
                if !self.visited.insert(h) {
                    self.rec.count(Counter::CandidatesDeduped);
                    continue;
                }
                let cest = self.ev.evaluate_unchecked(&cand.config);
                if let Some(hit) = self.settle_candidate(step, cand, h, cest, pool) {
                    return Some(hit);
                }
            }
        }
        None
    }

    /// The pooled execution of one generation step: one wave task per
    /// primitive, speculatively generated and pre-scored by the workers,
    /// then replayed here in task-ordinal order. The replay drives the
    /// canonical evaluator through the exact evaluation sequence of the
    /// serial path — memo hits/misses, counters, and histograms included
    /// — re-checks every dedup decision against the live visited set,
    /// and stops at the first acceptance just like the serial early
    /// exit; speculative work past that point is discarded unobserved.
    fn hop_resource_waved(
        &mut self,
        wp: &FrontierPool<WaveTask, TaskResult>,
        step: &HopStep<'_>,
        prims: &[Primitive],
        pool: &mut Vec<PoolEntry>,
    ) -> Option<(ParallelConfig, usize)> {
        let shared_cfg = Arc::new(step.config.clone());
        let shared_est = Arc::new(step.est.clone());
        let wave: Vec<WaveTask> = prims
            .iter()
            .map(|&prim| WaveTask {
                config: Arc::clone(&shared_cfg),
                est: Arc::clone(&shared_est),
                prim,
                stage: step.bottleneck.stage,
                resource: step.resource,
                gen_opts: self.opts.gen_options,
            })
            .collect();
        for result in wp.run_wave(wave) {
            self.rec.count(Counter::SearchWorkerBatches);
            // The generation fix-up evaluations precede the task's
            // candidate evaluations in the serial path too.
            for t in &result.gen_traces {
                self.ev.absorb_trace(t);
            }
            for ce in result.cands {
                match ce {
                    CandEval::Skipped { hash } => {
                        // The worker saw the fingerprint visited; the set
                        // is monotone, so the serial path would dedup too.
                        debug_assert!(self.visited.contains(hash), "worker skips are monotone");
                        self.rec.count(Counter::CandidatesDeduped);
                    }
                    CandEval::Done {
                        cand,
                        hash,
                        est: cest,
                        trace,
                    } => {
                        if !self.visited.insert(hash) {
                            self.rec.count(Counter::CandidatesDeduped);
                            continue;
                        }
                        self.ev.absorb_trace(&trace);
                        if let Some(hit) = self.settle_candidate(step, cand, hash, cest, pool) {
                            return Some(hit);
                        }
                    }
                }
            }
        }
        None
    }

    /// Shared bookkeeping for one freshly deduplicated, freshly scored
    /// candidate — identical between the serial path and the wave replay.
    fn settle_candidate(
        &mut self,
        step: &HopStep<'_>,
        cand: Candidate,
        h: u64,
        cest: ConfigEstimate,
        pool: &mut Vec<PoolEntry>,
    ) -> Option<(ParallelConfig, usize)> {
        self.explored += 1;
        self.rec.count(Counter::CandidatesGenerated);
        let score = cest.score();
        let hop = step.hop;
        let init_score = step.init_score;
        if score < init_score {
            self.rec.count(Counter::CandidatesAccepted);
            self.rec.emit(|| Event::CandidateAccepted {
                stage_count: self.stage_count,
                fingerprint: h,
                score,
                bottleneck_stage: step.bottleneck.stage,
                primitive: cand.primitive.name(),
                primitives_applied: cand.primitives_applied,
                hop_depth: hop + cand.primitives_applied,
            });
            self.rec
                .count_primitive(cand.primitive.name(), cand.primitives_applied as u64);
            self.rec
                .observe(HistKind::ScoreDelta, (init_score - score) / init_score);
            self.rec
                .observe(HistKind::HopDepth, (hop + cand.primitives_applied) as f64);
            return Some((cand.config, hop + cand.primitives_applied));
        }
        self.rec.count(Counter::CandidatesRejected);
        self.rec.emit(|| Event::CandidateRejected {
            stage_count: self.stage_count,
            fingerprint: h,
            score,
            bottleneck_stage: step.bottleneck.stage,
            primitive: cand.primitive.name(),
            primitives_applied: cand.primitives_applied,
            hop_depth: hop + cand.primitives_applied,
        });
        self.tie_counter += 1;
        let cfg = Arc::new(cand.config);
        self.unexplored.push(HeapEntry {
            score,
            tie: self.tie_counter,
            config: Arc::clone(&cfg),
        });
        pool.push((score, cand.primitives_applied, cfg, cest));
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;

    fn setup() -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("t", 4, 512, 8, 256, 8192, 64),
            ClusterSpec::v100(1, 4),
        )
    }

    fn opts() -> SearchOptions {
        SearchOptions {
            max_iterations: 12,
            parallel: false,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn search_improves_over_initial() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let search = AcesoSearch::new(&m, &c, &db, opts());
        let result = search.run().expect("search finds a config");
        assert!(!result.best_oom, "best config must be feasible");
        assert!(result.explored > 10);
        // Compare against the 2-stage balanced baseline.
        let pm = PerfModel::new(&m, &c, &db);
        let baseline = pm.evaluate_unchecked(&balanced_init(&m, &c, 2).expect("init"));
        assert!(
            result.best_time <= baseline.score(),
            "search {} vs baseline {}",
            result.best_time,
            baseline.score()
        );
    }

    #[test]
    fn search_is_deterministic() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let a = AcesoSearch::new(&m, &c, &db, opts()).run().expect("a");
        let b = AcesoSearch::new(&m, &c, &db, opts()).run().expect("b");
        assert_eq!(a.best_config.semantic_hash(), b.best_config.semantic_hash());
        assert_eq!(a.explored, b.explored);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let seq = AcesoSearch::new(&m, &c, &db, opts()).run().expect("seq");
        let par = AcesoSearch::new(
            &m,
            &c,
            &db,
            SearchOptions {
                parallel: true,
                ..opts()
            },
        )
        .run()
        .expect("par");
        assert_eq!(
            seq.best_config.semantic_hash(),
            par.best_config.semantic_hash()
        );
    }

    #[test]
    fn random_mode_still_finds_configs() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = AcesoSearch::new(
            &m,
            &c,
            &db,
            SearchOptions {
                use_heuristic2: false,
                seed: 7,
                ..opts()
            },
        )
        .run()
        .expect("random search runs");
        assert!(r.best_time > 0.0);
    }

    #[test]
    fn custom_initial_pins_stage_count() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let init = balanced_init(&m, &c, 2).expect("init");
        let r = AcesoSearch::new(
            &m,
            &c,
            &db,
            SearchOptions {
                initial: Some(init),
                ..opts()
            },
        )
        .run()
        .expect("runs");
        assert_eq!(r.traces.len(), 1);
        assert_eq!(r.traces[0].stage_count, 2);
    }

    #[test]
    fn traces_record_iterations() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = AcesoSearch::new(&m, &c, &db, opts()).run().expect("runs");
        let total_iters: usize = r.traces.iter().map(|t| t.iterations.len()).sum();
        assert!(total_iters > 0);
        assert!(r.traces.iter().any(|t| !t.convergence.is_empty()));
    }

    #[test]
    fn heap_entry_orders_min_first() {
        let cfg = balanced_init(
            &gpt3_custom("t", 2, 256, 4, 128, 1000, 16),
            &ClusterSpec::v100(1, 2),
            1,
        )
        .expect("init");
        let mut heap = BinaryHeap::new();
        for (score, tie) in [(3.0, 1), (1.0, 2), (2.0, 3), (1.0, 4)] {
            heap.push(HeapEntry {
                score,
                tie,
                config: Arc::new(cfg.clone()),
            });
        }
        let first = heap.pop().expect("non-empty");
        assert_eq!(first.score, 1.0);
        // Tie broken deterministically: lower tie id first.
        assert_eq!(first.tie, 2);
        assert_eq!(heap.pop().expect("second").score, 1.0);
        assert_eq!(heap.pop().expect("third").score, 2.0);
    }

    #[test]
    fn worker_pool_matches_serial_bit_for_bit() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let serial = AcesoSearch::new(
            &m,
            &c,
            &db,
            SearchOptions {
                search_threads: 1,
                ..opts()
            },
        )
        .run_observed(true)
        .expect("serial");
        let pooled = AcesoSearch::new(
            &m,
            &c,
            &db,
            SearchOptions {
                search_threads: 4,
                ..opts()
            },
        )
        .run_observed(true)
        .expect("pooled");
        assert_eq!(
            serial.0.best_config.semantic_hash(),
            pooled.0.best_config.semantic_hash()
        );
        assert_eq!(serial.0.explored, pooled.0.explored);
        assert_eq!(
            serial.1.events_jsonl(),
            pooled.1.events_jsonl(),
            "event streams must be byte-identical at any worker count"
        );
    }

    #[test]
    fn search_threads_resolution_clamps() {
        let o = SearchOptions {
            search_threads: 3,
            ..SearchOptions::default()
        };
        assert_eq!(o.resolved_threads(), 3);
        let o = SearchOptions {
            search_threads: 500,
            ..SearchOptions::default()
        };
        assert_eq!(o.resolved_threads(), 64);
        if std::env::var("ACESO_SEARCH_THREADS").is_err() {
            assert_eq!(SearchOptions::default().resolved_threads(), 1);
        }
    }

    #[test]
    fn default_stage_counts_bounded() {
        let (m, _) = setup();
        for gpus in [1usize, 2, 8] {
            let c = ClusterSpec::v100(1, gpus);
            let db = ProfileDb::build(&m, &c);
            let s = AcesoSearch::new(&m, &c, &db, SearchOptions::default());
            let counts = s.default_stage_counts();
            assert!(!counts.is_empty());
            assert!(counts.iter().all(|&p| p >= 1 && p <= gpus.max(1)));
            assert!(counts.len() <= 12);
        }
    }

    #[test]
    fn secondary_bottleneck_limit_respected() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = AcesoSearch::new(
            &m,
            &c,
            &db,
            SearchOptions {
                max_bottlenecks: 1,
                ..opts()
            },
        )
        .run()
        .expect("runs");
        for t in &r.traces {
            assert!(t.iterations.iter().all(|i| i.bottlenecks_tried <= 1));
        }
    }

    #[test]
    fn time_budget_respected() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let r = AcesoSearch::new(
            &m,
            &c,
            &db,
            SearchOptions {
                max_iterations: 100_000,
                time_budget: Some(Duration::from_millis(300)),
                parallel: false,
                ..SearchOptions::default()
            },
        )
        .run()
        .expect("runs");
        assert!(r.wall_time < Duration::from_secs(20));
    }
}
