//! Configuration-space cardinality counting (paper Figure 1).
//!
//! Figure 1 plots how the number of possible parallel configurations of a
//! GPT model on 16 devices explodes with the number of layers and the
//! number of mechanisms considered:
//!
//! * 2 mechanisms — data + tensor parallelism: each layer independently
//!   picks a `(dp, tp)` factorisation of the device count.
//! * 3 mechanisms — adds pipeline parallelism: layers are additionally
//!   partitioned into contiguous stages and devices are distributed over
//!   the stages.
//! * 4 mechanisms — adds recomputation: a per-layer on/off flag.
//!
//! Counts overflow `u64` almost immediately, so everything is computed in
//! log10 space.

/// Number of `(dp, tp)` factorisations of `devices` with both factors
/// powers of two (the paper's §5.1 restriction).
pub fn dp_tp_choices(devices: u64) -> u64 {
    if devices == 0 || !devices.is_power_of_two() {
        return 0;
    }
    devices.trailing_zeros() as u64 + 1
}

/// log10 of `n!`, via the log-gamma-free direct sum (exact enough here).
fn log10_factorial(n: u64) -> f64 {
    (2..=n).map(|k| (k as f64).log10()).sum()
}

/// log10 of the binomial coefficient `C(n, k)`.
pub fn log10_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    log10_factorial(n) - log10_factorial(k) - log10_factorial(n - k)
}

/// log10 of the number of configurations with data + tensor parallelism
/// only (2 mechanisms).
pub fn log10_configs_2mech(layers: u64, devices: u64) -> f64 {
    layers as f64 * (dp_tp_choices(devices) as f64).log10()
}

/// log10 of the number of configurations with data, tensor and pipeline
/// parallelism (3 mechanisms).
///
/// Sums over the stage count `p`: `C(layers-1, p-1)` contiguous layer
/// partitions × the number of ways to write `devices` as an ordered product
/// of `p` power-of-two stage sizes ≥ 1 (i.e. compositions of the exponent)
/// × per-stage `(dp, tp)` choices.
pub fn log10_configs_3mech(layers: u64, devices: u64) -> f64 {
    let e = devices.trailing_zeros() as u64; // devices = 2^e
    let mut total_log = f64::NEG_INFINITY;
    for p in 1..=layers.min(devices) {
        // Ordered power-of-two device splits: compositions of `e` into `p`
        // non-negative parts = C(e + p - 1, p - 1).
        let split_log = log10_binomial(e + p - 1, p - 1);
        let partition_log = log10_binomial(layers - 1, p - 1);
        // Each layer still picks its own (dp, tp) inside its stage; a stage
        // holds 2^(e/p) devices on average, giving e/p + 1 choices per layer.
        let per_layer_choices = ((e as f64 / p as f64) + 1.0).log10() * layers as f64;
        let term = split_log + partition_log + per_layer_choices;
        total_log = log10_add(total_log, term);
    }
    total_log
}

/// log10 of the 4-mechanism count (adds a per-layer recompute bit).
pub fn log10_configs_4mech(layers: u64, devices: u64) -> f64 {
    log10_configs_3mech(layers, devices) + layers as f64 * 2f64.log10()
}

/// `log10(10^a + 10^b)` without overflow.
fn log10_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    hi + (1.0 + 10f64.powf(lo - hi)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_tp_choices_powers_of_two() {
        assert_eq!(dp_tp_choices(1), 1);
        assert_eq!(dp_tp_choices(16), 5);
        assert_eq!(dp_tp_choices(12), 0);
        assert_eq!(dp_tp_choices(0), 0);
    }

    #[test]
    fn binomial_known_values() {
        assert!((log10_binomial(5, 2) - 1.0).abs() < 1e-9); // C(5,2)=10
        assert_eq!(log10_binomial(3, 5), f64::NEG_INFINITY);
        assert!((log10_binomial(4, 0)).abs() < 1e-12); // C(4,0)=1
    }

    #[test]
    fn counts_grow_with_layers() {
        let a = log10_configs_2mech(8, 16);
        let b = log10_configs_2mech(32, 16);
        assert!(b > a);
    }

    #[test]
    fn counts_grow_with_mechanisms() {
        for layers in [4u64, 8, 16, 32] {
            let two = log10_configs_2mech(layers, 16);
            let three = log10_configs_3mech(layers, 16);
            let four = log10_configs_4mech(layers, 16);
            assert!(three > two, "layers={layers}");
            assert!(four > three, "layers={layers}");
        }
    }

    #[test]
    fn figure1_magnitude() {
        // Figure 1 shows ≳10^20 configurations for a few dozen layers with
        // 4 mechanisms; verify we reach that magnitude.
        assert!(log10_configs_4mech(32, 16) > 20.0);
    }

    #[test]
    fn log10_add_basic() {
        assert!((log10_add(1.0, 1.0) - (20f64).log10()).abs() < 1e-12);
        assert_eq!(log10_add(f64::NEG_INFINITY, 3.0), 3.0);
    }
}
