//! Operator definitions.

/// Broad operator class; determines whether an operator is compute-bound
/// (matmul-like) or memory-bandwidth-bound (elementwise/normalisation) in
/// the simulated profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Token/vocab embedding lookup + positional add.
    Embedding,
    /// Layer normalisation (bandwidth-bound, usually replicated under tp).
    LayerNorm,
    /// Dense matrix multiplication (linear layer).
    MatMul,
    /// Attention core: `softmax(QKᵀ)·V`, sharded by heads under tp.
    Attention,
    /// Elementwise activation (GeLU/ReLU), bandwidth-bound.
    Activation,
    /// 2-D convolution.
    Conv2d,
    /// BatchNorm + ReLU fused block (bandwidth-bound).
    NormAct,
    /// Spatial pooling.
    Pool,
    /// Final loss computation (softmax + cross-entropy or similar).
    Loss,
}

impl OpKind {
    /// Whether the simulated profiler treats this kind as compute-bound.
    pub fn compute_bound(self) -> bool {
        matches!(self, OpKind::MatMul | OpKind::Attention | OpKind::Conv2d)
    }
}

/// Tensor-parallel partitioning dimension of one [`PartitionSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionDim {
    /// Weight split along rows (input dimension); forward all-reduce.
    Row,
    /// Weight split along columns (output dimension); backward all-reduce.
    Column,
    /// Sharded by attention heads (no collective inside the op).
    Head,
    /// Vocabulary-parallel embedding/classifier.
    Vocab,
    /// Convolution split along input channels; forward all-reduce.
    InChannel,
    /// Convolution split along output channels; backward all-reduce.
    OutChannel,
    /// Elementwise operator applied to an already-sharded tensor
    /// (activation functions, fused norm blocks between sharded matmuls).
    Elementwise,
    /// Not partitioned: every tp rank computes the full operator.
    Replicated,
}

/// How the operator's work and state scale with the tensor-parallel degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scaling {
    /// FLOPs, parameters and stash divide by `tp`.
    Divided,
    /// Every rank holds/computes the full operator (e.g. LayerNorm).
    Replicated,
}

/// Logical layout of an activation tensor at an operator boundary, relative
/// to the tensor-parallel group.
///
/// The performance model charges a resharding collective when a producer's
/// output layout (at its tp degree) does not match the consumer's expected
/// input layout — this is what makes in-stage tp/dp changes (§4.2) cost
/// something, exactly like the all-gather the paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Replicated full tensor on every rank of the group.
    Full,
    /// Sharded along the hidden/channel dimension across the group.
    Sharded,
}

/// One way an operator may be tensor-parallelised.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// The partition dimension.
    pub dim: PartitionDim,
    /// Work/state scaling under this partitioning.
    pub scaling: Scaling,
    /// Layout the operator expects its input in.
    pub input_layout: Layout,
    /// Layout the operator produces its output in (after any forward
    /// collective included in `fwd_comm_elems`).
    pub output_layout: Layout,
    /// Elements all-reduced across the tp group during forward, per sample.
    pub fwd_comm_elems: u64,
    /// Elements all-reduced across the tp group during backward, per sample.
    pub bwd_comm_elems: u64,
    /// Relative kernel efficiency of this layout in `(0, 1]`.
    pub efficiency: f64,
}

impl PartitionSpec {
    /// A replicated (non-partitioned) spec with full layouts and no comm.
    pub fn replicated() -> Self {
        Self {
            dim: PartitionDim::Replicated,
            scaling: Scaling::Replicated,
            input_layout: Layout::Full,
            output_layout: Layout::Full,
            fwd_comm_elems: 0,
            bwd_comm_elems: 0,
            efficiency: 1.0,
        }
    }
}

/// One operator of a sequential model.
///
/// All tensor quantities are *per sample* (one element of the mini-batch);
/// the performance model scales them by the per-device microbatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    /// Human-readable name, unique within the model (e.g. `layer17.fc1`).
    pub name: String,
    /// Operator class.
    pub kind: OpKind,
    /// Forward FLOPs per sample (backward is modelled as 2×).
    pub flops: f64,
    /// Parameter elements (weights + biases).
    pub params: u64,
    /// Input activation elements per sample.
    pub input_elems: u64,
    /// Output activation elements per sample.
    pub output_elems: u64,
    /// Activation elements that must be stashed for the backward pass per
    /// sample (inputs plus any intermediates), when *not* recomputed.
    pub stash_elems: u64,
    /// Maximum tensor-parallel degree this operator supports (divisibility
    /// of heads/channels/hidden).
    pub tp_limit: u32,
    /// Supported partitionings; index 0 is the default (Megatron-style)
    /// choice, later entries are alternatives for the fine-tuning pass.
    pub partitions: Vec<PartitionSpec>,
}

impl Operator {
    /// Returns the partition spec at `dim_index`, clamped to the available
    /// range (so a stale index degrades gracefully instead of panicking).
    pub fn partition(&self, dim_index: usize) -> &PartitionSpec {
        let i = dim_index.min(self.partitions.len().saturating_sub(1));
        &self.partitions[i]
    }

    /// Bytes of one parameter element under `precision`-style accounting is
    /// left to the caller; this returns raw parameter elements shared by a
    /// tp group member (i.e. `params / tp` for divided scaling).
    pub fn params_per_rank(&self, dim_index: usize, tp: u32) -> u64 {
        match self.partition(dim_index).scaling {
            Scaling::Divided => self.params / u64::from(tp.max(1)),
            Scaling::Replicated => self.params,
        }
    }

    /// Stash elements held by one tp rank per sample.
    pub fn stash_per_rank(&self, dim_index: usize, tp: u32) -> u64 {
        match self.partition(dim_index).scaling {
            Scaling::Divided => self.stash_elems / u64::from(tp.max(1)),
            Scaling::Replicated => self.stash_elems,
        }
    }

    /// Forward FLOPs executed by one tp rank per sample.
    pub fn flops_per_rank(&self, dim_index: usize, tp: u32) -> f64 {
        match self.partition(dim_index).scaling {
            Scaling::Divided => self.flops / f64::from(tp.max(1)),
            Scaling::Replicated => self.flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> Operator {
        Operator {
            name: "t".into(),
            kind: OpKind::MatMul,
            flops: 1000.0,
            params: 400,
            input_elems: 10,
            output_elems: 20,
            stash_elems: 10,
            tp_limit: 8,
            partitions: vec![
                PartitionSpec {
                    dim: PartitionDim::Column,
                    scaling: Scaling::Divided,
                    input_layout: Layout::Full,
                    output_layout: Layout::Sharded,
                    fwd_comm_elems: 0,
                    bwd_comm_elems: 10,
                    efficiency: 1.0,
                },
                PartitionSpec::replicated(),
            ],
        }
    }

    #[test]
    fn divided_scaling() {
        let o = op();
        assert_eq!(o.params_per_rank(0, 4), 100);
        assert_eq!(o.stash_per_rank(0, 4), 2);
        assert!((o.flops_per_rank(0, 4) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn replicated_scaling() {
        let o = op();
        assert_eq!(o.params_per_rank(1, 4), 400);
        assert_eq!(o.stash_per_rank(1, 4), 10);
        assert!((o.flops_per_rank(1, 4) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn partition_index_clamps() {
        let o = op();
        assert_eq!(o.partition(99).dim, PartitionDim::Replicated);
    }

    #[test]
    fn tp_zero_treated_as_one() {
        let o = op();
        assert_eq!(o.params_per_rank(0, 0), 400);
    }

    #[test]
    fn kind_classification() {
        assert!(OpKind::MatMul.compute_bound());
        assert!(OpKind::Conv2d.compute_bound());
        assert!(!OpKind::LayerNorm.compute_bound());
        assert!(!OpKind::Loss.compute_bound());
    }
}
