//! T5 model family (paper Table 2: 0.77B, 3B, 6B, 11B, 22B).
//!
//! T5 is the paper's *heterogeneous* benchmark: encoder layers run at
//! sequence length 2048 and decoder layers at 512 (Table 2), and decoder
//! layers carry an extra cross-attention block — so a balanced pipeline
//! partition is inherently uneven in both compute and memory.
//!
//! Simplification (documented in DESIGN.md): the encoder output consumed by
//! decoder cross-attention is modelled as flowing through the sequential
//! pipeline boundary rather than being broadcast separately.

use super::transformer::{self, TransformerDims};
use crate::graph::{ModelGraph, Precision};
use crate::op::Operator;

/// Encoder sequence length from the paper's Table 2.
const SEQ_ENC: u64 = 2048;
/// Decoder sequence length from the paper's Table 2.
const SEQ_DEC: u64 = 512;

/// T5 variants used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum T5Size {
    /// 0.77 B parameters (24 + 24 layers, hidden 1024).
    S0_77b,
    /// 3 B parameters (24 + 24 layers, hidden 2048).
    S3b,
    /// 6 B parameters (48 + 48 layers, hidden 2048).
    S6b,
    /// 11 B parameters (24 + 24 layers, hidden 4096).
    S11b,
    /// 22 B parameters (48 + 48 layers, hidden 4096).
    S22b,
}

impl T5Size {
    /// All sizes in paper order.
    pub const ALL: [T5Size; 5] = [
        T5Size::S0_77b,
        T5Size::S3b,
        T5Size::S6b,
        T5Size::S11b,
        T5Size::S22b,
    ];

    /// (encoder layers, decoder layers, hidden, heads).
    pub fn dims(self) -> (usize, usize, u64, u32) {
        match self {
            T5Size::S0_77b => (24, 24, 1024, 16),
            T5Size::S3b => (24, 24, 2048, 32),
            T5Size::S6b => (48, 48, 2048, 32),
            T5Size::S11b => (24, 24, 4096, 64),
            T5Size::S22b => (48, 48, 4096, 64),
        }
    }

    /// Nominal parameter count in billions (paper Table 2).
    pub fn nominal_billions(self) -> f64 {
        match self {
            T5Size::S0_77b => 0.77,
            T5Size::S3b => 3.0,
            T5Size::S6b => 6.0,
            T5Size::S11b => 11.0,
            T5Size::S22b => 22.0,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            T5Size::S0_77b => "t5-0.77b",
            T5Size::S3b => "t5-3b",
            T5Size::S6b => "t5-6b",
            T5Size::S11b => "t5-11b",
            T5Size::S22b => "t5-22b",
        }
    }
}

/// Builds a T5 model with the paper's batch size (1024), FP16.
pub fn t5(size: T5Size) -> ModelGraph {
    let (enc, dec, hidden, heads) = size.dims();
    t5_custom(size.name(), enc, dec, hidden, heads, 1024)
}

/// Appends one decoder layer: self-attention (seq 512), cross-attention
/// (queries 512 against encoder keys/values 2048), MLP — 13 operators.
fn push_decoder_layer(ops: &mut Vec<Operator>, prefix: &str, d: &TransformerDims) {
    ops.push(transformer::layer_norm(format!("{prefix}.ln1"), d, SEQ_DEC));
    ops.push(transformer::qkv_proj(
        format!("{prefix}.qkv"),
        d,
        SEQ_DEC,
        3,
    ));
    ops.push(transformer::attention_core(
        format!("{prefix}.attn"),
        d,
        SEQ_DEC,
        SEQ_DEC,
    ));
    ops.push(transformer::out_proj(format!("{prefix}.proj"), d, SEQ_DEC));
    ops.push(transformer::layer_norm(format!("{prefix}.ln2"), d, SEQ_DEC));
    ops.push(transformer::qkv_proj(format!("{prefix}.xq"), d, SEQ_DEC, 1));
    ops.push(transformer::qkv_proj(
        format!("{prefix}.xkv"),
        d,
        SEQ_ENC,
        2,
    ));
    ops.push(transformer::attention_core(
        format!("{prefix}.xattn"),
        d,
        SEQ_DEC,
        SEQ_ENC,
    ));
    ops.push(transformer::out_proj(format!("{prefix}.xproj"), d, SEQ_DEC));
    ops.push(transformer::layer_norm(format!("{prefix}.ln3"), d, SEQ_DEC));
    ops.push(transformer::mlp_fc1(format!("{prefix}.fc1"), d, SEQ_DEC));
    ops.push(transformer::mlp_act(format!("{prefix}.act"), d, SEQ_DEC));
    ops.push(transformer::mlp_fc2(format!("{prefix}.fc2"), d, SEQ_DEC));
}

/// Builds a T5-style encoder–decoder stack with explicit hyper-parameters.
pub fn t5_custom(
    name: &str,
    enc_layers: usize,
    dec_layers: usize,
    hidden: u64,
    heads: u32,
    global_batch: usize,
) -> ModelGraph {
    let d = TransformerDims {
        hidden,
        heads,
        ffn: 4 * hidden,
        vocab: 32128,
    };
    let mut ops: Vec<Operator> = Vec::with_capacity(enc_layers * 8 + dec_layers * 13 + 6);
    ops.push(transformer::embedding("enc_embed".into(), &d, SEQ_ENC));
    for l in 0..enc_layers {
        transformer::push_layer(&mut ops, &format!("enc{l}"), &d, SEQ_ENC);
    }
    ops.push(transformer::layer_norm("enc_final_ln".into(), &d, SEQ_ENC));
    ops.push(transformer::embedding("dec_embed".into(), &d, SEQ_DEC));
    for l in 0..dec_layers {
        push_decoder_layer(&mut ops, &format!("dec{l}"), &d);
    }
    ops.push(transformer::layer_norm("dec_final_ln".into(), &d, SEQ_DEC));
    ops.push(transformer::lm_head("lm_head".into(), &d, SEQ_DEC));
    ops.push(transformer::ce_loss("loss".into(), &d, SEQ_DEC));
    ModelGraph {
        name: name.into(),
        ops,
        global_batch,
        precision: Precision::Fp16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_match_nominal() {
        for size in T5Size::ALL {
            let m = t5(size);
            let billions = m.total_params() as f64 / 1e9;
            let nominal = size.nominal_billions();
            assert!(
                (billions / nominal) > 0.7 && (billions / nominal) < 1.35,
                "{}: built {billions:.2}B vs nominal {nominal}B",
                size.name()
            );
        }
    }

    #[test]
    fn heterogeneous_encoder_vs_decoder() {
        let m = t5(T5Size::S0_77b);
        let enc_fc1 = m.ops.iter().find(|o| o.name == "enc0.fc1").unwrap();
        let dec_fc1 = m.ops.iter().find(|o| o.name == "dec0.fc1").unwrap();
        // Encoder runs 4× the sequence length of the decoder.
        assert!((enc_fc1.flops / dec_fc1.flops - 4.0).abs() < 0.01);
    }

    #[test]
    fn decoder_has_cross_attention() {
        let m = t5(T5Size::S0_77b);
        assert!(m.ops.iter().any(|o| o.name == "dec0.xattn"));
        let x = m.ops.iter().find(|o| o.name == "dec0.xattn").unwrap();
        // Cross-attention keys/values come from the 2048-token encoder side.
        assert!(x.stash_elems > 16 * 512 * 2048);
    }

    #[test]
    fn structure_validates() {
        let m = t5(T5Size::S3b);
        assert!(m.validate().is_ok());
        assert_eq!(m.len(), 24 * 8 + 24 * 13 + 6);
    }
}
