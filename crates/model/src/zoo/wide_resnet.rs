//! Wide-ResNet family (paper Table 2: 0.5B, 2B, 4B, 6.8B, 13B; FP32,
//! 224×224×3 inputs, batch 1536).
//!
//! The architecture is a bottleneck ResNet whose interior widths are scaled
//! by a width multiplier (as in the Wide-ResNet / Alpa evaluation setups);
//! parameters grow roughly with the square of the multiplier.

use crate::graph::{ModelGraph, Precision};
use crate::op::{Layout, OpKind, Operator, PartitionDim, PartitionSpec, Scaling};

/// Wide-ResNet variants used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WideResnetSize {
    /// ≈0.5 B parameters (depth 50, width ×4).
    S0_5b,
    /// ≈2 B parameters (depth 50, width ×8).
    S2b,
    /// ≈4 B parameters (depth 50, width ×12).
    S4b,
    /// ≈6.8 B parameters (depth 50, width ×16).
    S6_8b,
    /// ≈13 B parameters (depth 101, width ×16).
    S13b,
}

impl WideResnetSize {
    /// All sizes in paper order.
    pub const ALL: [WideResnetSize; 5] = [
        WideResnetSize::S0_5b,
        WideResnetSize::S2b,
        WideResnetSize::S4b,
        WideResnetSize::S6_8b,
        WideResnetSize::S13b,
    ];

    /// (bottleneck blocks per stage, width multiplier).
    pub fn dims(self) -> ([usize; 4], u64) {
        match self {
            WideResnetSize::S0_5b => ([3, 4, 6, 3], 4),
            WideResnetSize::S2b => ([3, 4, 6, 3], 8),
            WideResnetSize::S4b => ([3, 4, 6, 3], 12),
            WideResnetSize::S6_8b => ([3, 4, 6, 3], 16),
            WideResnetSize::S13b => ([3, 4, 23, 3], 16),
        }
    }

    /// Nominal parameter count in billions (paper Table 2).
    pub fn nominal_billions(self) -> f64 {
        match self {
            WideResnetSize::S0_5b => 0.5,
            WideResnetSize::S2b => 2.0,
            WideResnetSize::S4b => 4.0,
            WideResnetSize::S6_8b => 6.8,
            WideResnetSize::S13b => 13.0,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            WideResnetSize::S0_5b => "wresnet-0.5b",
            WideResnetSize::S2b => "wresnet-2b",
            WideResnetSize::S4b => "wresnet-4b",
            WideResnetSize::S6_8b => "wresnet-6.8b",
            WideResnetSize::S13b => "wresnet-13b",
        }
    }
}

/// Out-channel-sharded conv spec: full input, sharded output.
fn out_channel(input_elems: u64) -> PartitionSpec {
    PartitionSpec {
        dim: PartitionDim::OutChannel,
        scaling: Scaling::Divided,
        input_layout: Layout::Full,
        output_layout: Layout::Sharded,
        fwd_comm_elems: 0,
        bwd_comm_elems: input_elems,
        efficiency: 1.0,
    }
}

/// In-channel-sharded conv spec: sharded input, full output after a forward
/// all-reduce.
fn in_channel(output_elems: u64) -> PartitionSpec {
    PartitionSpec {
        dim: PartitionDim::InChannel,
        scaling: Scaling::Divided,
        input_layout: Layout::Sharded,
        output_layout: Layout::Full,
        fwd_comm_elems: output_elems,
        bwd_comm_elems: 0,
        efficiency: 0.93,
    }
}

/// Builds a convolution operator.
///
/// `spatial` is the output feature-map side length; FLOPs are
/// `2·k²·C_in·C_out·H·W` per sample.
#[allow(clippy::too_many_arguments)]
fn conv(
    name: String,
    c_in: u64,
    c_out: u64,
    k: u64,
    spatial_out: u64,
    spatial_in: u64,
    default_out_channel: bool,
) -> Operator {
    let in_e = c_in * spatial_in * spatial_in;
    let out_e = c_out * spatial_out * spatial_out;
    let hw = spatial_out * spatial_out;
    let mut parts = vec![out_channel(in_e), in_channel(out_e)];
    if !default_out_channel {
        parts.swap(0, 1);
    }
    Operator {
        name,
        kind: OpKind::Conv2d,
        flops: 2.0 * (k * k * c_in * c_out * hw) as f64,
        params: k * k * c_in * c_out,
        input_elems: in_e,
        output_elems: out_e,
        stash_elems: in_e,
        tp_limit: (c_out / 16).clamp(1, 64) as u32,
        partitions: parts,
    }
}

/// Fused BatchNorm + ReLU (bandwidth-bound, sharded passthrough).
fn norm_act(name: String, c: u64, spatial: u64) -> Operator {
    let e = c * spatial * spatial;
    Operator {
        name,
        kind: OpKind::NormAct,
        flops: 10.0 * e as f64,
        params: 4 * c,
        input_elems: e,
        output_elems: e,
        stash_elems: e,
        tp_limit: (c / 16).clamp(1, 64) as u32,
        partitions: vec![
            PartitionSpec {
                dim: PartitionDim::Elementwise,
                scaling: Scaling::Divided,
                input_layout: Layout::Sharded,
                output_layout: Layout::Sharded,
                fwd_comm_elems: 0,
                bwd_comm_elems: 0,
                efficiency: 1.0,
            },
            PartitionSpec::replicated(),
        ],
    }
}

/// Builds a Wide-ResNet with the paper's batch size (1536), FP32.
pub fn wide_resnet(size: WideResnetSize) -> ModelGraph {
    let (blocks, width) = size.dims();
    wide_resnet_custom(size.name(), &blocks, width, 1536)
}

/// Builds a Wide-ResNet with explicit stage depths and width multiplier.
pub fn wide_resnet_custom(
    name: &str,
    blocks: &[usize; 4],
    width: u64,
    global_batch: usize,
) -> ModelGraph {
    let mut ops: Vec<Operator> = Vec::new();
    // Stem: 7×7/2 conv on 224² input → 112² maps, then 3×3/2 max-pool → 56².
    let stem_c = 64 * width;
    ops.push(conv("stem.conv".into(), 3, stem_c, 7, 112, 224, true));
    ops.push(norm_act("stem.bnrelu".into(), stem_c, 112));
    ops.push(Operator {
        name: "stem.pool".into(),
        kind: OpKind::Pool,
        flops: 9.0 * (stem_c * 56 * 56) as f64,
        params: 0,
        input_elems: stem_c * 112 * 112,
        output_elems: stem_c * 56 * 56,
        stash_elems: stem_c * 56 * 56,
        tp_limit: (stem_c / 16).min(64) as u32,
        partitions: vec![PartitionSpec {
            dim: PartitionDim::Elementwise,
            scaling: Scaling::Divided,
            input_layout: Layout::Sharded,
            output_layout: Layout::Sharded,
            fwd_comm_elems: 0,
            bwd_comm_elems: 0,
            efficiency: 1.0,
        }],
    });

    let mids = [64 * width, 128 * width, 256 * width, 512 * width];
    let outs = [256 * width, 512 * width, 1024 * width, 2048 * width];
    let spatials = [56u64, 28, 14, 7];
    let mut c_prev = stem_c;
    for (stage, &n_blocks) in blocks.iter().enumerate() {
        let (mid, out, sp) = (mids[stage], outs[stage], spatials[stage]);
        for b in 0..n_blocks {
            let p = format!("s{stage}b{b}");
            // Stride-2 downsampling happens in the first block of stages 1–3.
            let sp_in = if b == 0 && stage > 0 { sp * 2 } else { sp };
            // Projection shortcut when shape changes.
            if c_prev != out || sp_in != sp {
                ops.push(conv(format!("{p}.down"), c_prev, out, 1, sp, sp_in, true));
            }
            ops.push(conv(
                format!("{p}.conv1"),
                c_prev,
                mid,
                1,
                sp_in,
                sp_in,
                true,
            ));
            ops.push(norm_act(format!("{p}.bn1"), mid, sp_in));
            ops.push(conv(format!("{p}.conv2"), mid, mid, 3, sp, sp_in, false));
            ops.push(norm_act(format!("{p}.bn2"), mid, sp));
            ops.push(conv(format!("{p}.conv3"), mid, out, 1, sp, sp, true));
            ops.push(norm_act(format!("{p}.bn3"), out, sp));
            c_prev = out;
        }
    }

    // Head: global average pool + classifier + loss.
    let classes = 1000u64;
    ops.push(Operator {
        name: "head.avgpool".into(),
        kind: OpKind::Pool,
        flops: (c_prev * 7 * 7) as f64,
        params: 0,
        input_elems: c_prev * 7 * 7,
        output_elems: c_prev,
        stash_elems: c_prev,
        tp_limit: (c_prev / 16).min(64) as u32,
        partitions: vec![PartitionSpec {
            dim: PartitionDim::Elementwise,
            scaling: Scaling::Divided,
            input_layout: Layout::Sharded,
            output_layout: Layout::Full,
            fwd_comm_elems: 0,
            bwd_comm_elems: 0,
            efficiency: 1.0,
        }],
    });
    ops.push(Operator {
        name: "head.fc".into(),
        kind: OpKind::MatMul,
        flops: 2.0 * (c_prev * classes) as f64,
        params: c_prev * classes + classes,
        input_elems: c_prev,
        output_elems: classes,
        stash_elems: c_prev,
        tp_limit: 16,
        partitions: vec![
            PartitionSpec {
                dim: PartitionDim::Column,
                scaling: Scaling::Divided,
                input_layout: Layout::Full,
                output_layout: Layout::Sharded,
                fwd_comm_elems: 0,
                bwd_comm_elems: c_prev,
                efficiency: 1.0,
            },
            PartitionSpec::replicated(),
        ],
    });
    ops.push(Operator {
        name: "loss".into(),
        kind: OpKind::Loss,
        flops: 10.0 * classes as f64,
        params: 0,
        input_elems: classes,
        output_elems: 1,
        stash_elems: classes,
        tp_limit: 16,
        partitions: vec![PartitionSpec {
            dim: PartitionDim::Elementwise,
            scaling: Scaling::Divided,
            input_layout: Layout::Sharded,
            output_layout: Layout::Full,
            fwd_comm_elems: 4,
            bwd_comm_elems: 0,
            efficiency: 1.0,
        }],
    });

    ModelGraph {
        name: name.into(),
        ops,
        global_batch,
        precision: Precision::Fp32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_match_nominal() {
        for size in WideResnetSize::ALL {
            let m = wide_resnet(size);
            let billions = m.total_params() as f64 / 1e9;
            let nominal = size.nominal_billions();
            assert!(
                (billions / nominal) > 0.6 && (billions / nominal) < 1.6,
                "{}: built {billions:.2}B vs nominal {nominal}B",
                size.name()
            );
        }
    }

    #[test]
    fn uses_fp32_and_conv_ops() {
        let m = wide_resnet(WideResnetSize::S0_5b);
        assert_eq!(m.precision, Precision::Fp32);
        assert!(m.ops.iter().any(|o| o.kind == OpKind::Conv2d));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn early_ops_have_large_activations() {
        // Early spatial maps dominate activation memory — the property that
        // makes Wide-ResNet pipelines memory-imbalanced in the paper.
        let m = wide_resnet(WideResnetSize::S2b);
        let first_quarter: u64 = m.ops[..m.len() / 4].iter().map(|o| o.stash_elems).sum();
        let last_quarter: u64 = m.ops[3 * m.len() / 4..].iter().map(|o| o.stash_elems).sum();
        assert!(first_quarter > 2 * last_quarter);
    }

    #[test]
    fn params_concentrate_late() {
        let m = wide_resnet(WideResnetSize::S2b);
        let half = m.len() / 2;
        let early: u64 = m.ops[..half].iter().map(|o| o.params).sum();
        let late: u64 = m.ops[half..].iter().map(|o| o.params).sum();
        assert!(late > early);
    }

    #[test]
    fn conv_has_both_channel_partitions() {
        let m = wide_resnet(WideResnetSize::S0_5b);
        let c = m.ops.iter().find(|o| o.name == "s0b0.conv1").unwrap();
        assert_eq!(c.partitions.len(), 2);
        assert_eq!(c.partitions[0].dim, PartitionDim::OutChannel);
        assert_eq!(c.partitions[1].dim, PartitionDim::InChannel);
    }

    #[test]
    fn depth_101_has_more_ops() {
        let a = wide_resnet(WideResnetSize::S6_8b);
        let b = wide_resnet(WideResnetSize::S13b);
        assert!(b.len() > a.len());
    }
}
