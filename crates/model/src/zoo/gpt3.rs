//! GPT-3 model family (paper Table 2: 0.35B, 1.3B, 2.6B, 6.7B, 13B).

use super::transformer::{self, TransformerDims};
use crate::graph::{ModelGraph, Precision};
use crate::op::Operator;

/// GPT-3 variants used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gpt3Size {
    /// 0.35 B parameters (24 layers, hidden 1024).
    S0_35b,
    /// 1.3 B parameters (24 layers, hidden 2048).
    S1_3b,
    /// 2.6 B parameters (32 layers, hidden 2560).
    S2_6b,
    /// 6.7 B parameters (32 layers, hidden 4096).
    S6_7b,
    /// 13 B parameters (40 layers, hidden 5120).
    S13b,
}

impl Gpt3Size {
    /// All sizes in paper order.
    pub const ALL: [Gpt3Size; 5] = [
        Gpt3Size::S0_35b,
        Gpt3Size::S1_3b,
        Gpt3Size::S2_6b,
        Gpt3Size::S6_7b,
        Gpt3Size::S13b,
    ];

    /// (layers, hidden, heads) per the GPT-3 paper's architecture table.
    pub fn dims(self) -> (usize, u64, u32) {
        match self {
            Gpt3Size::S0_35b => (24, 1024, 16),
            Gpt3Size::S1_3b => (24, 2048, 32),
            Gpt3Size::S2_6b => (32, 2560, 32),
            Gpt3Size::S6_7b => (32, 4096, 32),
            Gpt3Size::S13b => (40, 5120, 40),
        }
    }

    /// Nominal parameter count in billions (paper Table 2).
    pub fn nominal_billions(self) -> f64 {
        match self {
            Gpt3Size::S0_35b => 0.35,
            Gpt3Size::S1_3b => 1.3,
            Gpt3Size::S2_6b => 2.6,
            Gpt3Size::S6_7b => 6.7,
            Gpt3Size::S13b => 13.0,
        }
    }

    /// Short display name (e.g. `gpt3-1.3b`).
    pub fn name(self) -> &'static str {
        match self {
            Gpt3Size::S0_35b => "gpt3-0.35b",
            Gpt3Size::S1_3b => "gpt3-1.3b",
            Gpt3Size::S2_6b => "gpt3-2.6b",
            Gpt3Size::S6_7b => "gpt3-6.7b",
            Gpt3Size::S13b => "gpt3-13b",
        }
    }
}

/// Builds a GPT-3 model with the paper's batch size (1024) and sequence
/// length (2048), FP16.
///
/// # Examples
///
/// ```
/// use aceso_model::zoo::{gpt3, Gpt3Size};
///
/// let m = gpt3(Gpt3Size::S2_6b);
/// assert_eq!(m.len(), 32 * 8 + 4); // 32 layers × 8 ops + embed/ln/head/loss
/// assert!(m.total_params() > 2_500_000_000);
/// ```
pub fn gpt3(size: Gpt3Size) -> ModelGraph {
    let (layers, hidden, heads) = size.dims();
    gpt3_custom(size.name(), layers, hidden, heads, 2048, 51200, 1024)
}

/// Builds a GPT-style decoder stack with explicit hyper-parameters.
pub fn gpt3_custom(
    name: &str,
    layers: usize,
    hidden: u64,
    heads: u32,
    seq: u64,
    vocab: u64,
    global_batch: usize,
) -> ModelGraph {
    let d = TransformerDims {
        hidden,
        heads,
        ffn: 4 * hidden,
        vocab,
    };
    let mut ops: Vec<Operator> = Vec::with_capacity(layers * 8 + 4);
    ops.push(transformer::embedding("embed".into(), &d, seq));
    for l in 0..layers {
        transformer::push_layer(&mut ops, &format!("layer{l}"), &d, seq);
    }
    ops.push(transformer::layer_norm("final_ln".into(), &d, seq));
    ops.push(transformer::lm_head("lm_head".into(), &d, seq));
    ops.push(transformer::ce_loss("loss".into(), &d, seq));
    ModelGraph {
        name: name.into(),
        ops,
        global_batch,
        precision: Precision::Fp16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_match_nominal() {
        for size in Gpt3Size::ALL {
            let m = gpt3(size);
            let billions = m.total_params() as f64 / 1e9;
            let nominal = size.nominal_billions();
            // Embedding/head/bias bookkeeping differs between papers; allow
            // a generous band but require the right magnitude.
            assert!(
                (billions / nominal) > 0.75 && (billions / nominal) < 1.35,
                "{}: built {billions:.2}B vs nominal {nominal}B",
                size.name()
            );
        }
    }

    #[test]
    fn op_count_scales_with_layers() {
        let m = gpt3(Gpt3Size::S13b);
        assert_eq!(m.len(), 40 * 8 + 4);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn homogeneous_middle_layers() {
        let m = gpt3(Gpt3Size::S1_3b);
        // All per-layer qkv ops are identical in cost (homogeneous model).
        let qkv: Vec<&crate::op::Operator> =
            m.ops.iter().filter(|o| o.name.ends_with(".qkv")).collect();
        assert_eq!(qkv.len(), 24);
        assert!(qkv.windows(2).all(|w| w[0].flops == w[1].flops));
    }

    #[test]
    fn custom_builder_respects_args() {
        let m = gpt3_custom("t", 2, 256, 4, 128, 1000, 16);
        assert_eq!(m.global_batch, 16);
        assert_eq!(m.len(), 2 * 8 + 4);
    }
}
