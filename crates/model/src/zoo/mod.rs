//! Model zoo: builders for the paper's Table 2 benchmark models.
//!
//! All builders produce operator-level [`crate::ModelGraph`]s whose total
//! parameter counts land on the sizes the paper reports (verified by the
//! tests in each submodule).

mod deepnet;
mod gpt3;
mod t5;
mod transformer;
mod wide_resnet;

pub use deepnet::deepnet;
pub use gpt3::{gpt3, gpt3_custom, Gpt3Size};
pub use t5::{t5, t5_custom, T5Size};
pub use wide_resnet::{wide_resnet, wide_resnet_custom, WideResnetSize};
