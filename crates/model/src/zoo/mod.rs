//! Model zoo: builders for the paper's Table 2 benchmark models.
//!
//! All builders produce operator-level [`crate::ModelGraph`]s whose total
//! parameter counts land on the sizes the paper reports (verified by the
//! tests in each submodule).

mod deepnet;
mod gpt3;
mod t5;
mod transformer;
mod wide_resnet;

pub use deepnet::deepnet;
pub use gpt3::{gpt3, gpt3_custom, Gpt3Size};
pub use t5::{t5, t5_custom, T5Size};
pub use wide_resnet::{wide_resnet, wide_resnet_custom, WideResnetSize};

/// Resolves a CLI/server model name (e.g. `gpt3-1.3b`, `t5-3b`,
/// `wresnet-0.5b`, `deepnet-24l`) to its zoo builder. Returns `None`
/// for unknown names — the shared vocabulary of `aceso search`,
/// `aceso submit`, and the serve daemon.
pub fn by_name(name: &str) -> Option<crate::ModelGraph> {
    match name {
        "gpt3-0.35b" => Some(gpt3(Gpt3Size::S0_35b)),
        "gpt3-1.3b" => Some(gpt3(Gpt3Size::S1_3b)),
        "gpt3-2.6b" => Some(gpt3(Gpt3Size::S2_6b)),
        "gpt3-6.7b" => Some(gpt3(Gpt3Size::S6_7b)),
        "gpt3-13b" => Some(gpt3(Gpt3Size::S13b)),
        "t5-0.77b" => Some(t5(T5Size::S0_77b)),
        "t5-3b" => Some(t5(T5Size::S3b)),
        "t5-6b" => Some(t5(T5Size::S6b)),
        "t5-11b" => Some(t5(T5Size::S11b)),
        "t5-22b" => Some(t5(T5Size::S22b)),
        "wresnet-0.5b" => Some(wide_resnet(WideResnetSize::S0_5b)),
        "wresnet-2b" => Some(wide_resnet(WideResnetSize::S2b)),
        "wresnet-4b" => Some(wide_resnet(WideResnetSize::S4b)),
        "wresnet-6.8b" => Some(wide_resnet(WideResnetSize::S6_8b)),
        "wresnet-13b" => Some(wide_resnet(WideResnetSize::S13b)),
        other => {
            let layers = other
                .strip_prefix("deepnet-")
                .and_then(|s| s.strip_suffix('l'))
                .and_then(|s| s.parse::<usize>().ok())?;
            Some(deepnet(layers))
        }
    }
}
