//! DeepNet-style very deep transformers for the 1K-layer scalability
//! experiment (Exp#3, Fig. 9).
//!
//! Hyper-parameters follow the DeepNet setting the paper cites (narrow
//! hidden size, many layers) scaled to fit the experiment's 8-GPU testbed:
//! hidden 1024, 16 heads, sequence 1024, global batch 256.

use super::gpt3::gpt3_custom;
use crate::graph::ModelGraph;

/// Builds a DeepNet-style stack with `layers` transformer layers.
pub fn deepnet(layers: usize) -> ModelGraph {
    gpt3_custom(
        &format!("deepnet-{layers}l"),
        layers,
        1024,
        16,
        1024,
        51200,
        256,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_1000_layers() {
        let m = deepnet(1000);
        assert_eq!(m.len(), 1000 * 8 + 4);
        assert!(m.validate().is_ok());
        // ≈ 12·L·h² params.
        let billions = m.total_params() as f64 / 1e9;
        assert!(billions > 10.0 && billions < 15.0, "got {billions}B");
    }

    #[test]
    fn small_variant() {
        let m = deepnet(8);
        assert_eq!(m.len(), 8 * 8 + 4);
        assert_eq!(m.global_batch, 256);
    }
}
