//! Shared transformer building blocks (GPT-3, T5, DeepNet-style stacks).
//!
//! Partitioning follows Megatron-LM's assignment: QKV and the first MLP
//! matmul are column-parallel (no forward collective, backward all-reduce of
//! the input gradient), the output projection and second MLP matmul are
//! row-parallel (forward all-reduce), the attention core is head-sharded,
//! and LayerNorms are replicated. Each matmul also carries the *other*
//! partition dimension as an alternative for the fine-tuning pass (§4.2).

use crate::op::{Layout, OpKind, Operator, PartitionDim, PartitionSpec, Scaling};

/// Hyper-parameters of one transformer stack.
#[derive(Debug, Clone, Copy)]
pub struct TransformerDims {
    /// Hidden size.
    pub hidden: u64,
    /// Attention heads (also the tp limit of the attention core).
    pub heads: u32,
    /// Feed-forward inner size (usually `4 * hidden`).
    pub ffn: u64,
    /// Vocabulary size.
    pub vocab: u64,
}

/// Column-parallel spec: full input, sharded output; backward all-reduces
/// the input gradient.
fn col(input_elems: u64, eff: f64) -> PartitionSpec {
    PartitionSpec {
        dim: PartitionDim::Column,
        scaling: Scaling::Divided,
        input_layout: Layout::Full,
        output_layout: Layout::Sharded,
        fwd_comm_elems: 0,
        bwd_comm_elems: input_elems,
        efficiency: eff,
    }
}

/// Row-parallel spec: sharded input, full output after a forward all-reduce.
fn row(output_elems: u64, eff: f64) -> PartitionSpec {
    PartitionSpec {
        dim: PartitionDim::Row,
        scaling: Scaling::Divided,
        input_layout: Layout::Sharded,
        output_layout: Layout::Full,
        fwd_comm_elems: output_elems,
        bwd_comm_elems: 0,
        efficiency: eff,
    }
}

/// Sharded elementwise passthrough (GeLU between column- and row-parallel
/// matmuls, head-sharded attention internals).
fn elementwise() -> PartitionSpec {
    PartitionSpec {
        dim: PartitionDim::Elementwise,
        scaling: Scaling::Divided,
        input_layout: Layout::Sharded,
        output_layout: Layout::Sharded,
        fwd_comm_elems: 0,
        bwd_comm_elems: 0,
        efficiency: 1.0,
    }
}

/// A LayerNorm operator (replicated under tp, bandwidth-bound).
pub fn layer_norm(name: String, d: &TransformerDims, seq: u64) -> Operator {
    let e = seq * d.hidden;
    Operator {
        name,
        kind: OpKind::LayerNorm,
        flops: 5.0 * e as f64,
        params: 2 * d.hidden,
        input_elems: e,
        output_elems: e,
        stash_elems: e,
        tp_limit: u32::MAX,
        partitions: vec![PartitionSpec::replicated()],
    }
}

/// Fused QKV projection (column-parallel by default).
pub fn qkv_proj(name: String, d: &TransformerDims, seq: u64, kv_mult: u64) -> Operator {
    // `kv_mult` is 3 for fused self-attention QKV, 1 for a lone Q, 2 for KV.
    let h = d.hidden;
    let in_e = seq * h;
    let out_e = kv_mult * seq * h;
    Operator {
        name,
        kind: OpKind::MatMul,
        flops: 2.0 * (seq * h * kv_mult * h) as f64,
        params: kv_mult * h * h + kv_mult * h,
        input_elems: in_e,
        output_elems: out_e,
        stash_elems: in_e,
        tp_limit: d.heads,
        partitions: vec![col(in_e, 1.0), row(out_e, 0.97)],
    }
}

/// Attention core `softmax(QKᵀ)V`, head-sharded.
///
/// Stashes Q/K/V, the softmax input *and* output (Megatron-LM keeps both),
/// the attention-dropout mask, and the context output — the big
/// pre-FlashAttention activation term that makes a transformer layer stash
/// ≈ `s·h·(34 + 5·n·s/h)` bytes in fp16.
pub fn attention_core(name: String, d: &TransformerDims, seq_q: u64, seq_kv: u64) -> Operator {
    let h = d.hidden;
    let probs = 5 * u64::from(d.heads) * seq_q * seq_kv / 2;
    Operator {
        name,
        kind: OpKind::Attention,
        // QKᵀ and A·V, 2 FLOPs per MAC each.
        flops: 2.0 * 2.0 * (seq_q * seq_kv * h) as f64,
        params: 0,
        input_elems: seq_q * h + 2 * seq_kv * h,
        output_elems: seq_q * h,
        stash_elems: 2 * seq_q * h + 2 * seq_kv * h + probs,
        tp_limit: d.heads,
        partitions: vec![PartitionSpec {
            dim: PartitionDim::Head,
            scaling: Scaling::Divided,
            input_layout: Layout::Sharded,
            output_layout: Layout::Sharded,
            fwd_comm_elems: 0,
            bwd_comm_elems: 0,
            efficiency: 0.55,
        }],
    }
}

/// Attention output projection (row-parallel by default).
pub fn out_proj(name: String, d: &TransformerDims, seq: u64) -> Operator {
    let h = d.hidden;
    let e = seq * h;
    Operator {
        name,
        kind: OpKind::MatMul,
        flops: 2.0 * (seq * h * h) as f64,
        params: h * h + h,
        input_elems: e,
        output_elems: e,
        // Input plus the residual-dropout mask.
        stash_elems: 2 * e,
        tp_limit: d.heads,
        partitions: vec![row(e, 1.0), col(e, 0.97)],
    }
}

/// First MLP matmul `h → ffn` (column-parallel by default).
pub fn mlp_fc1(name: String, d: &TransformerDims, seq: u64) -> Operator {
    let in_e = seq * d.hidden;
    let out_e = seq * d.ffn;
    Operator {
        name,
        kind: OpKind::MatMul,
        flops: 2.0 * (seq * d.hidden * d.ffn) as f64,
        params: d.hidden * d.ffn + d.ffn,
        input_elems: in_e,
        output_elems: out_e,
        stash_elems: in_e,
        tp_limit: (d.ffn / 64).min(u64::from(u32::MAX)) as u32,
        partitions: vec![col(in_e, 1.0), row(out_e, 0.9)],
    }
}

/// Elementwise activation between the MLP matmuls.
pub fn mlp_act(name: String, d: &TransformerDims, seq: u64) -> Operator {
    let e = seq * d.ffn;
    Operator {
        name,
        kind: OpKind::Activation,
        flops: 8.0 * e as f64,
        params: 0,
        input_elems: e,
        output_elems: e,
        stash_elems: e,
        tp_limit: (d.ffn / 64).min(u64::from(u32::MAX)) as u32,
        partitions: vec![elementwise()],
    }
}

/// Second MLP matmul `ffn → h` (row-parallel by default).
pub fn mlp_fc2(name: String, d: &TransformerDims, seq: u64) -> Operator {
    let in_e = seq * d.ffn;
    let out_e = seq * d.hidden;
    Operator {
        name,
        kind: OpKind::MatMul,
        flops: 2.0 * (seq * d.hidden * d.ffn) as f64,
        params: d.hidden * d.ffn + d.hidden,
        input_elems: in_e,
        output_elems: out_e,
        // Input plus the residual-dropout mask.
        stash_elems: in_e + out_e,
        tp_limit: (d.ffn / 64).min(u64::from(u32::MAX)) as u32,
        partitions: vec![row(out_e, 1.0), col(out_e, 0.9)],
    }
}

/// Vocab-parallel token embedding.
pub fn embedding(name: String, d: &TransformerDims, seq: u64) -> Operator {
    let e = seq * d.hidden;
    Operator {
        name,
        kind: OpKind::Embedding,
        flops: 2.0 * e as f64,
        params: d.vocab * d.hidden + seq * d.hidden,
        input_elems: seq,
        output_elems: e,
        stash_elems: seq,
        tp_limit: 64,
        partitions: vec![
            PartitionSpec {
                dim: PartitionDim::Vocab,
                scaling: Scaling::Divided,
                input_layout: Layout::Full,
                output_layout: Layout::Full,
                fwd_comm_elems: e,
                bwd_comm_elems: 0,
                efficiency: 1.0,
            },
            PartitionSpec::replicated(),
        ],
    }
}

/// Vocab-parallel language-model head (`h → vocab` matmul).
pub fn lm_head(name: String, d: &TransformerDims, seq: u64) -> Operator {
    let in_e = seq * d.hidden;
    let out_e = seq * d.vocab;
    Operator {
        name,
        kind: OpKind::MatMul,
        flops: 2.0 * (seq * d.hidden * d.vocab) as f64,
        params: d.vocab * d.hidden,
        input_elems: in_e,
        output_elems: out_e,
        stash_elems: in_e,
        tp_limit: 64,
        partitions: vec![col(in_e, 1.0)],
    }
}

/// Vocab-sharded softmax cross-entropy loss; the heavy last-stage operator
/// the GPT case study (§5.4) attributes uneven pipeline partitions to.
pub fn ce_loss(name: String, d: &TransformerDims, seq: u64) -> Operator {
    let logits = seq * d.vocab;
    Operator {
        name,
        kind: OpKind::Loss,
        flops: 10.0 * logits as f64,
        params: 0,
        input_elems: logits,
        output_elems: 1,
        stash_elems: logits,
        tp_limit: 64,
        partitions: vec![PartitionSpec {
            dim: PartitionDim::Elementwise,
            scaling: Scaling::Divided,
            input_layout: Layout::Sharded,
            output_layout: Layout::Full,
            fwd_comm_elems: 4 * seq,
            bwd_comm_elems: 0,
            efficiency: 1.0,
        }],
    }
}

/// Appends one decoder/encoder self-attention + MLP layer (8 operators).
pub fn push_layer(ops: &mut Vec<Operator>, prefix: &str, d: &TransformerDims, seq: u64) {
    ops.push(layer_norm(format!("{prefix}.ln1"), d, seq));
    ops.push(qkv_proj(format!("{prefix}.qkv"), d, seq, 3));
    ops.push(attention_core(format!("{prefix}.attn"), d, seq, seq));
    ops.push(out_proj(format!("{prefix}.proj"), d, seq));
    ops.push(layer_norm(format!("{prefix}.ln2"), d, seq));
    ops.push(mlp_fc1(format!("{prefix}.fc1"), d, seq));
    ops.push(mlp_act(format!("{prefix}.act"), d, seq));
    ops.push(mlp_fc2(format!("{prefix}.fc2"), d, seq));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> TransformerDims {
        TransformerDims {
            hidden: 1024,
            heads: 16,
            ffn: 4096,
            vocab: 51200,
        }
    }

    #[test]
    fn layer_param_count_is_12h2() {
        let d = dims();
        let mut ops = Vec::new();
        push_layer(&mut ops, "l0", &d, 2048);
        let params: u64 = ops.iter().map(|o| o.params).sum();
        let h = d.hidden;
        // 12 h² plus biases and LN weights.
        let expect = 12 * h * h;
        assert!(
            params > expect && params < expect + 32 * h,
            "params={params}"
        );
    }

    #[test]
    fn layer_flops_match_closed_form() {
        let d = dims();
        let mut ops = Vec::new();
        push_layer(&mut ops, "l0", &d, 2048);
        let flops: f64 = ops.iter().map(|o| o.flops).sum();
        let h = d.hidden as f64;
        let s = 2048f64;
        // 24 s h² (matmuls) + 4 s² h (attention), ignoring elementwise terms.
        let expect = 24.0 * s * h * h + 4.0 * s * s * h;
        assert!((flops - expect).abs() / expect < 0.02, "flops={flops:e}");
    }

    #[test]
    fn column_then_row_avoids_forward_comm() {
        let d = dims();
        let fc1 = mlp_fc1("f1".into(), &d, 2048);
        let fc2 = mlp_fc2("f2".into(), &d, 2048);
        assert_eq!(fc1.partitions[0].fwd_comm_elems, 0);
        assert_eq!(fc1.partitions[0].output_layout, Layout::Sharded);
        assert_eq!(fc2.partitions[0].input_layout, Layout::Sharded);
        assert!(fc2.partitions[0].fwd_comm_elems > 0);
    }

    #[test]
    fn attention_stash_includes_probs() {
        let d = dims();
        let a = attention_core("a".into(), &d, 2048, 2048);
        assert!(a.stash_elems > u64::from(d.heads) * 2048 * 2048);
        assert_eq!(a.tp_limit, d.heads);
    }

    #[test]
    fn alternative_partitions_present_on_matmuls() {
        let d = dims();
        let q = qkv_proj("q".into(), &d, 2048, 3);
        assert_eq!(q.partitions.len(), 2);
        assert_ne!(q.partitions[0].dim, q.partitions[1].dim);
    }
}
