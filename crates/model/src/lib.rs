//! Operator-level DNN model IR and the paper's model zoo.
//!
//! Aceso operates on a *sequential* list of operators (pipeline stages are
//! contiguous ranges of this list, as in the paper). Each [`Operator`]
//! carries the per-sample quantities the performance model needs — forward
//! FLOPs, parameter elements, activation sizes — plus the tensor-parallel
//! [`PartitionSpec`]s it supports (row/column for matmuls, in/out-channel
//! for convolutions, head/vocab sharding, or replication).
//!
//! The zoo builds the paper's Table 2 models: GPT-3 (0.35B–13B), T5
//! (0.77B–22B), Wide-ResNet (0.5B–13B), and the DeepNet-style deep stacks
//! used in the 1K-layer scalability experiment (Exp#3).

pub mod graph;
pub mod op;
pub mod space;
pub mod zoo;

pub use graph::{ModelGraph, Precision};
pub use op::{Layout, OpKind, Operator, PartitionDim, PartitionSpec, Scaling};
