//! Sequential model graph.

use crate::op::Operator;
use aceso_util::json::{FromJson, JsonError, ToJson, Value};

/// Numeric precision of activations/parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Half precision (2 bytes/element), mixed-precision optimiser states.
    Fp16,
    /// Single precision (4 bytes/element).
    Fp32,
}

impl Precision {
    /// Bytes per activation/parameter element.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
        }
    }

    /// Bytes of optimiser state per parameter (Adam).
    ///
    /// Fp16 follows Megatron mixed precision: fp32 master copy + two fp32
    /// moments = 12 bytes. Fp32: two fp32 moments = 8 bytes.
    pub fn optimizer_bytes(self) -> u64 {
        match self {
            Precision::Fp16 => 12,
            Precision::Fp32 => 8,
        }
    }
}

impl ToJson for Precision {
    fn to_json_value(&self) -> Value {
        Value::Str(
            match self {
                Precision::Fp16 => "fp16",
                Precision::Fp32 => "fp32",
            }
            .to_string(),
        )
    }
}

impl FromJson for Precision {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        match v.as_str()? {
            "fp16" => Ok(Precision::Fp16),
            "fp32" => Ok(Precision::Fp32),
            other => Err(JsonError::shape(format!("unknown precision `{other}`"))),
        }
    }
}

/// A DNN model as a sequential operator list (the representation the paper's
/// search operates on — pipeline stages are contiguous ranges of `ops`).
#[derive(Debug, Clone)]
pub struct ModelGraph {
    /// Model name, e.g. `gpt3-13b`.
    pub name: String,
    /// Operators in execution order.
    pub ops: Vec<Operator>,
    /// Global (aggregated) mini-batch size per training iteration.
    pub global_batch: usize,
    /// Numeric precision.
    pub precision: Precision,
}

/// Error returned by [`ModelGraph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The operator list is empty.
    Empty,
    /// An operator has no partition specs.
    NoPartitions(String),
    /// Two operators share a name.
    DuplicateName(String),
    /// The global batch is zero.
    ZeroBatch,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Empty => write!(f, "model has no operators"),
            ModelError::NoPartitions(n) => write!(f, "operator `{n}` has no partition specs"),
            ModelError::DuplicateName(n) => write!(f, "duplicate operator name `{n}`"),
            ModelError::ZeroBatch => write!(f, "global batch size is zero"),
        }
    }
}

impl std::error::Error for ModelError {}

impl ModelGraph {
    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total parameter elements.
    pub fn total_params(&self) -> u64 {
        self.ops.iter().map(|o| o.params).sum()
    }

    /// Total forward FLOPs per sample.
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().map(|o| o.flops).sum()
    }

    /// Model FLOPs per training iteration (fwd + 2× bwd, whole batch),
    /// excluding recomputation — the paper's "effective" FLOP count.
    pub fn iteration_flops(&self) -> f64 {
        3.0 * self.total_flops() * self.global_batch as f64
    }

    /// Checks structural invariants.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.ops.is_empty() {
            return Err(ModelError::Empty);
        }
        if self.global_batch == 0 {
            return Err(ModelError::ZeroBatch);
        }
        let mut names = std::collections::HashSet::new();
        for op in &self.ops {
            if op.partitions.is_empty() {
                return Err(ModelError::NoPartitions(op.name.clone()));
            }
            if !names.insert(op.name.as_str()) {
                return Err(ModelError::DuplicateName(op.name.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, PartitionSpec};

    fn tiny() -> ModelGraph {
        let mk = |name: &str| Operator {
            name: name.into(),
            kind: OpKind::MatMul,
            flops: 100.0,
            params: 10,
            input_elems: 4,
            output_elems: 4,
            stash_elems: 4,
            tp_limit: 4,
            partitions: vec![PartitionSpec::replicated()],
        };
        ModelGraph {
            name: "tiny".into(),
            ops: vec![mk("a"), mk("b")],
            global_batch: 8,
            precision: Precision::Fp16,
        }
    }

    #[test]
    fn totals() {
        let m = tiny();
        assert_eq!(m.total_params(), 20);
        assert!((m.total_flops() - 200.0).abs() < 1e-9);
        assert!((m.iteration_flops() - 3.0 * 200.0 * 8.0).abs() < 1e-9);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn validate_ok() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_duplicate() {
        let mut m = tiny();
        m.ops[1].name = "a".into();
        assert_eq!(m.validate(), Err(ModelError::DuplicateName("a".into())));
    }

    #[test]
    fn validate_empty_and_zero_batch() {
        let mut m = tiny();
        m.ops.clear();
        assert_eq!(m.validate(), Err(ModelError::Empty));
        let mut m = tiny();
        m.global_batch = 0;
        assert_eq!(m.validate(), Err(ModelError::ZeroBatch));
    }

    #[test]
    fn validate_no_partitions() {
        let mut m = tiny();
        m.ops[0].partitions.clear();
        assert!(matches!(m.validate(), Err(ModelError::NoPartitions(_))));
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Fp16.optimizer_bytes(), 12);
        assert_eq!(Precision::Fp32.optimizer_bytes(), 8);
    }
}
