//! Quick comparative smoke run (not a paper experiment): one mid-size
//! GPT-3 setting under all three systems, printing the numbers that matter
//! for the headline claims.

use aceso_bench::harness::{aceso_opts_for, ExpEnv};
use aceso_model::zoo::{gpt3, t5, wide_resnet, Gpt3Size, T5Size, WideResnetSize};
use aceso_perf::PerfModel;
use std::time::Instant;

fn main() {
    let size = std::env::args().nth(1).unwrap_or_else(|| "1.3b".into());
    let (model, gpus) = match size.as_str() {
        "0.35b" => (gpt3(Gpt3Size::S0_35b), 1),
        "1.3b" => (gpt3(Gpt3Size::S1_3b), 4),
        "2.6b" => (gpt3(Gpt3Size::S2_6b), 8),
        "6.7b" => (gpt3(Gpt3Size::S6_7b), 16),
        "13b" => (gpt3(Gpt3Size::S13b), 32),
        "wrn-2b" => (wide_resnet(WideResnetSize::S2b), 4),
        "wrn-6.8b" => (wide_resnet(WideResnetSize::S6_8b), 16),
        "wrn-13b" => (wide_resnet(WideResnetSize::S13b), 32),
        "t5-3b" => (t5(T5Size::S3b), 4),
        "t5-11b" => (t5(T5Size::S11b), 16),
        "t5-22b" => (t5(T5Size::S22b), 32),
        other => panic!("unknown size {other}"),
    };
    eprintln!("model {} on {} GPUs, {} ops", model.name, gpus, model.len());
    let t0 = Instant::now();
    let env = ExpEnv::new(model, gpus);
    eprintln!(
        "profile db built in {:?} ({} entries)",
        t0.elapsed(),
        env.db.len()
    );
    let pm = PerfModel::new(&env.model, &env.cluster, &env.db);

    let t0 = Instant::now();
    let aceso = env
        .run_aceso(aceso_opts_for(false, env.model.len()))
        .expect("aceso");
    eprintln!(
        "aceso search: {:?}, explored {}",
        t0.elapsed(),
        aceso.explored
    );
    let a_run = env.execute(&aceso.best_config);
    println!(
        "aceso    predicted {:.3}s actual {:.3}s tput {:.1} tflops {:.1} stages {} mbs {} mem {:.1}/{:.1} GB",
        aceso.best_time,
        a_run.iteration_time,
        a_run.throughput,
        a_run.tflops_per_gpu,
        aceso.best_config.num_stages(),
        aceso.best_config.microbatch,
        a_run.peak_memory as f64 / 1e9,
        pm.evaluate_unchecked(&aceso.best_config).max_memory as f64 / 1e9,
    );
    for (i, s) in aceso.best_config.stages.iter().enumerate() {
        let ops0 = s.ops.first().expect("nonempty");
        println!(
            "  stage {i}: ops {}..{} gpus {} tp {} dp {} rc {}/{}",
            s.op_start,
            s.op_end,
            s.gpus,
            ops0.tp,
            ops0.dp,
            s.num_recomputed(),
            s.num_ops()
        );
    }

    let t0 = Instant::now();
    if let Some(meg) = env.run_megatron() {
        let m_run = env.execute(&meg.config);
        eprintln!(
            "megatron search: {:?}, explored {}",
            t0.elapsed(),
            meg.explored
        );
        println!(
            "megatron predicted {:.3}s actual {:.3}s tput {:.1} tflops {:.1} stages {} mbs {} oom {}",
            meg.iteration_time,
            m_run.iteration_time,
            m_run.throughput,
            m_run.tflops_per_gpu,
            meg.config.num_stages(),
            meg.config.microbatch,
            meg.oom,
        );
    }

    let t0 = Instant::now();
    match env.run_alpa() {
        Ok(alpa) => {
            let al_run = env.execute(&alpa.config);
            eprintln!(
                "alpa search: {:?} (modeled {:.1}s), explored {}",
                t0.elapsed(),
                alpa.modeled_seconds,
                alpa.explored
            );
            println!(
                "alpa     predicted {:.3}s actual {:.3}s tput {:.1} tflops {:.1} stages {} mbs {} oom {}",
                alpa.iteration_time,
                al_run.iteration_time,
                al_run.throughput,
                al_run.tflops_per_gpu,
                alpa.config.num_stages(),
                alpa.config.microbatch,
                alpa.oom,
            );
        }
        Err(e) => println!("alpa failed: {e}"),
    }
}
