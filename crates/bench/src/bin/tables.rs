//! Tables 3–5 (paper appendix): effective TFLOPS per GPU for GPT-3,
//! Wide-ResNet and T5 under each system.
//!
//! Reads the measurements `exp1` recorded; run `exp1` first.

use aceso_bench::harness::{load_exp1, write_csv, Exp1Row};
use aceso_util::table::Table;

fn family_table(rows: &[Exp1Row], family: &str, title: &str) -> Table {
    let mut models: Vec<String> = rows
        .iter()
        .filter(|r| r.family == family)
        .map(|r| r.model.clone())
        .collect();
    models.dedup();
    let mut header = vec!["system".to_string()];
    header.extend(models.iter().cloned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &header_refs);
    let mut systems: Vec<String> = rows
        .iter()
        .filter(|r| r.family == family)
        .map(|r| r.system.clone())
        .collect();
    systems.sort();
    systems.dedup();
    for system in systems {
        let mut cells = vec![system.clone()];
        for model in &models {
            let cell = rows
                .iter()
                .find(|r| r.family == family && &r.model == model && r.system == system)
                .map(|r| format!("{:.2}", r.tflops))
                .unwrap_or_else(|| "-".into());
            cells.push(cell);
        }
        t.row(&cells);
    }
    t
}

fn main() {
    let Some(rows) = load_exp1() else {
        eprintln!("results/exp1.json not found — run exp1 first");
        std::process::exit(1);
    };
    for (family, title, csv) in [
        ("gpt3", "Table 3: GPT-3 TFLOPS per GPU", "table3_gpt3.csv"),
        (
            "wresnet",
            "Table 4: Wide-ResNet TFLOPS per GPU",
            "table4_wresnet.csv",
        ),
        ("t5", "Table 5: T5 TFLOPS per GPU", "table5_t5.csv"),
    ] {
        let t = family_table(&rows, family, title);
        println!("{}", t.render());
        write_csv(csv, &t);
    }
}
