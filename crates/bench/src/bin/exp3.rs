//! Exp#3 (Figure 9): scalability to 1K-layer models on 8 GPUs.
//!
//! DeepNet-style transformers from 8 to 1000 layers. Claim C3: Aceso
//! always finishes within the budget and finds a runnable configuration;
//! Alpa's search cost grows with layer count until it fails compilation
//! beyond 64 layers.

use aceso_bench::harness::{aceso_opts_for, full_scale, write_csv, ExpEnv};
use aceso_model::zoo::deepnet;
use aceso_util::table::Table;

fn main() {
    let layer_counts: Vec<usize> = if full_scale() {
        vec![8, 16, 32, 64, 128, 256, 512, 1000]
    } else {
        vec![8, 16, 32, 64, 128, 1000]
    };
    let mut t = Table::new(
        "Figure 9: search cost and throughput vs model depth (8 GPUs)",
        &[
            "layers",
            "aceso cost (s)",
            "aceso tput (samples/s)",
            "alpa cost (s)",
            "alpa tput",
        ],
    );
    for layers in layer_counts {
        eprintln!("== {layers} layers ==");
        let env = ExpEnv::new(deepnet(layers), 8);
        let aceso = env
            .run_aceso(aceso_opts_for(full_scale(), env.model.len()))
            .expect("aceso always finds a configuration");
        let aceso_tput = env.execute(&aceso.best_config).throughput;
        let (alpa_cost, alpa_tput) = match env.run_alpa() {
            Ok(r) => (
                format!("{:.1}", r.modeled_seconds),
                format!("{:.2}", env.execute(&r.config).throughput),
            ),
            Err(e) => {
                eprintln!("   alpa: {e}");
                ("x".to_string(), "x".to_string())
            }
        };
        t.row(&[
            layers.to_string(),
            format!("{:.1}", aceso.wall_time.as_secs_f64()),
            format!("{:.2}", aceso_tput),
            alpa_cost,
            alpa_tput,
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nShape check: Aceso finishes every depth within its budget (claim\n\
         C3); Alpa's cost grows with depth and compilation fails (x) past 64\n\
         layers, as in the paper's Figure 9."
    );
    write_csv("exp3_fig9.csv", &t);
}
