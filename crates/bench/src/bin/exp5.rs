//! Exp#5 (Figures 11 & 12): heuristic efficiency.
//!
//! Figure 11: over many search iterations, how many ranked bottlenecks
//! Heuristic-1 tries before finding an improvement (paper: 90% succeed on
//! the first), and how many hops improvements need (paper: 68% need >1).
//!
//! Figure 12: convergence of the best-found estimate over search time with
//! Heuristic-2 on vs replaced by random exploration (3 seeds).

use aceso_baselines::random_search;
use aceso_bench::harness::{aceso_opts_for, full_scale, write_csv, ExpEnv};
use aceso_core::SearchTrace;
use aceso_model::zoo::{gpt3, t5, wide_resnet, Gpt3Size, T5Size, WideResnetSize};
use aceso_model::ModelGraph;
use aceso_util::table::Table;

fn fig11(settings: &[(ModelGraph, usize)]) {
    let mut traces: Vec<SearchTrace> = Vec::new();
    for (model, gpus) in settings {
        eprintln!("== tracing {} on {gpus} GPUs ==", model.name);
        let env = ExpEnv::new(model.clone(), *gpus);
        let r = env
            .run_aceso(aceso_opts_for(full_scale(), env.model.len()))
            .expect("search runs");
        traces.extend(r.traces);
    }
    let improving: Vec<(usize, usize)> = traces
        .iter()
        .flat_map(|t| t.iterations.iter())
        .filter(|r| r.improved)
        .map(|r| (r.bottlenecks_tried, r.hops_used))
        .collect();
    let total = improving.len().max(1);

    let mut t = Table::new(
        "Figure 11(a): bottlenecks tried before improvement",
        &["bottlenecks tried", "fraction of iterations"],
    );
    for k in 1..=3 {
        let n = improving.iter().filter(|(b, _)| *b == k).count();
        t.row(&[k.to_string(), format!("{:.2}", n as f64 / total as f64)]);
    }
    print!("{}", t.render());
    let first_try = improving.iter().filter(|(b, _)| *b == 1).count() as f64 / total as f64;
    println!("first-try fraction: {first_try:.2} (paper: 0.90)\n");
    write_csv("exp5_fig11a.csv", &t);

    let mut t = Table::new(
        "Figure 11(b): hops needed for improvement",
        &["hops", "fraction of iterations"],
    );
    let max_hops = improving.iter().map(|(_, h)| *h).max().unwrap_or(1);
    for k in 1..=max_hops {
        let n = improving.iter().filter(|(_, h)| *h == k).count();
        t.row(&[k.to_string(), format!("{:.2}", n as f64 / total as f64)]);
    }
    print!("{}", t.render());
    let multi = improving.iter().filter(|(_, h)| *h > 1).count() as f64 / total as f64;
    println!("multi-hop fraction: {multi:.2} (paper: 0.68)\n");
    write_csv("exp5_fig11b.csv", &t);
}

fn fig12(settings: &[(ModelGraph, usize)]) {
    let mut csv = Table::new("", &["model", "mode", "seed", "elapsed_s", "best_score"]);
    let mut summary = Table::new(
        "Figure 12: final best estimated iteration time (s)",
        &["model", "with heuristic-2", "random (3 seeds, best/worst)"],
    );
    for (model, gpus) in settings {
        eprintln!("== convergence for {} on {gpus} GPUs ==", model.name);
        let env = ExpEnv::new(model.clone(), *gpus);
        let opts = aceso_opts_for(full_scale(), env.model.len());
        let with_h2 = env.run_aceso(opts.clone()).expect("search runs");
        for tr in &with_h2.traces {
            for p in &tr.convergence {
                csv.row(&[
                    model.name.clone(),
                    "heuristic2".into(),
                    "0".into(),
                    format!("{:.2}", p.elapsed),
                    format!("{:.4}", p.best_score),
                ]);
            }
        }
        let mut rand_scores = Vec::new();
        for seed in [1u64, 2, 3] {
            let r = random_search(&env.model, &env.cluster, &env.db, &opts, seed)
                .expect("random search runs");
            rand_scores.push(r.top_configs[0].score);
            for tr in &r.traces {
                for p in &tr.convergence {
                    csv.row(&[
                        model.name.clone(),
                        "random".into(),
                        seed.to_string(),
                        format!("{:.2}", p.elapsed),
                        format!("{:.4}", p.best_score),
                    ]);
                }
            }
        }
        let best = rand_scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = rand_scores.iter().cloned().fold(0.0f64, f64::max);
        summary.row(&[
            model.name.clone(),
            format!("{:.2}", with_h2.top_configs[0].score),
            format!("{best:.2} / {worst:.2}"),
        ]);
    }
    print!("{}", summary.render());
    println!(
        "\nShape check: with a tight budget, Heuristic-2 matches or beats the\n\
         best random seed and avoids the worst-seed tail (Fig. 12)."
    );
    write_csv("exp5_fig12_curves.csv", &csv);
    write_csv("exp5_fig12_summary.csv", &summary);
}

fn main() {
    let trace_settings: Vec<(ModelGraph, usize)> = if full_scale() {
        vec![
            (gpt3(Gpt3Size::S2_6b), 8),
            (gpt3(Gpt3Size::S13b), 32),
            (wide_resnet(WideResnetSize::S6_8b), 16),
            (t5(T5Size::S11b), 16),
        ]
    } else {
        vec![
            (gpt3(Gpt3Size::S1_3b), 4),
            (wide_resnet(WideResnetSize::S2b), 4),
            (t5(T5Size::S3b), 4),
        ]
    };
    fig11(&trace_settings);

    let conv_settings: Vec<(ModelGraph, usize)> = if full_scale() {
        vec![
            (gpt3(Gpt3Size::S13b), 32),
            (wide_resnet(WideResnetSize::S13b), 32),
        ]
    } else {
        vec![
            (gpt3(Gpt3Size::S2_6b), 8),
            (wide_resnet(WideResnetSize::S2b), 4),
        ]
    };
    fig12(&conv_settings);
}
