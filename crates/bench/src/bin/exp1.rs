//! Exp#1 (Figure 7): training throughput of GPT-3, Wide-ResNet and T5
//! under Aceso, Megatron-LM and Alpa, across the paper's size/GPU ladder.
//!
//! Also records search costs (consumed by `exp2`), predicted-vs-actual
//! numbers (consumed by `exp8`/`exp9`) and TFLOPS (consumed by `tables`).
//!
//! Set `ACESO_FULL=1` for paper-scale search budgets; the default quick
//! pass reproduces the qualitative shape in a few minutes.

use aceso_bench::harness::{
    aceso_opts_for, full_scale, save_exp1, write_csv, Exp1Row, ExpEnv, SIZE_GPU_LADDER,
};
use aceso_config::ParallelConfig;
use aceso_model::zoo::{gpt3, t5, wide_resnet, Gpt3Size, T5Size, WideResnetSize};
use aceso_model::ModelGraph;
use aceso_perf::PerfModel;
use aceso_util::table::Table;

/// Systems compared per family (T5 has no official Alpa implementation).
fn systems_for(family: &str) -> Vec<&'static str> {
    match family {
        "t5" => vec!["aceso", "megatron"],
        _ => vec!["aceso", "megatron", "alpa"],
    }
}

fn measure(
    env: &ExpEnv,
    family: &str,
    system: &str,
    config: ParallelConfig,
    search: (f64, f64, usize),
) -> Exp1Row {
    let pm = PerfModel::new(&env.model, &env.cluster, &env.db);
    let est = pm.evaluate_unchecked(&config);
    let report = env.execute(&config);
    Exp1Row {
        family: family.to_string(),
        model: env.model.name.clone(),
        gpus: env.cluster.total_gpus(),
        system: system.to_string(),
        iteration_time: report.iteration_time,
        throughput: report.throughput,
        tflops: report.tflops_per_gpu,
        search_wall: search.0,
        search_modeled: search.1,
        explored: search.2,
        config,
        predicted_time: est.iteration_time,
        predicted_mem: est.max_memory,
        actual_mem: report.peak_memory,
    }
}

fn run_family(family: &str, models: Vec<(ModelGraph, usize)>, rows: &mut Vec<Exp1Row>) {
    for (model, gpus) in models {
        let name = model.name.clone();
        eprintln!("== {name} on {gpus} GPU(s) ==");
        let env = ExpEnv::new(model, gpus);

        // 1-GPU setting: all systems share the Alpa-found configuration
        // (§5.1), or the Aceso one for T5 where Alpa has no implementation.
        if gpus == 1 {
            let (config, wall, modeled, explored) = match env.run_alpa() {
                Ok(r) => (
                    r.config,
                    r.wall_time.as_secs_f64(),
                    r.modeled_seconds,
                    r.explored,
                ),
                Err(_) => {
                    let r = env
                        .run_aceso(aceso_opts_for(full_scale(), env.model.len()))
                        .expect("aceso runs");
                    let w = r.wall_time.as_secs_f64();
                    let e = r.explored;
                    (r.best_config, w, w, e)
                }
            };
            for system in systems_for(family) {
                rows.push(measure(
                    &env,
                    family,
                    system,
                    config.clone(),
                    (wall, modeled, explored),
                ));
            }
            continue;
        }

        for system in systems_for(family) {
            eprintln!("   running {system} search...");
            match system {
                "aceso" => {
                    let r = env
                        .run_aceso(aceso_opts_for(full_scale(), env.model.len()))
                        .expect("aceso runs");
                    let wall = r.wall_time.as_secs_f64();
                    // Evaluate the top-k on the runtime and keep the best
                    // (§5.1 mitigates prediction error this way).
                    let best = r
                        .top_configs
                        .iter()
                        .filter(|c| !c.oom)
                        .map(|c| {
                            let t = env.execute(&c.config).iteration_time;
                            (t, c.config.clone())
                        })
                        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(_, c)| c)
                        .unwrap_or_else(|| r.best_config.clone());
                    rows.push(measure(
                        &env,
                        family,
                        system,
                        best,
                        (wall, wall, r.explored),
                    ));
                }
                "megatron" => {
                    if let Some(r) = env.run_megatron() {
                        rows.push(measure(
                            &env,
                            family,
                            system,
                            r.config,
                            (r.wall_time.as_secs_f64(), r.modeled_seconds, r.explored),
                        ));
                    }
                }
                "alpa" => {
                    if let Ok(r) = env.run_alpa() {
                        rows.push(measure(
                            &env,
                            family,
                            system,
                            r.config,
                            (r.wall_time.as_secs_f64(), r.modeled_seconds, r.explored),
                        ));
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

fn main() {
    let mut rows: Vec<Exp1Row> = Vec::new();

    let gpt: Vec<(ModelGraph, usize)> = Gpt3Size::ALL
        .iter()
        .zip(SIZE_GPU_LADDER)
        .map(|(&s, g)| (gpt3(s), g))
        .collect();
    run_family("gpt3", gpt, &mut rows);

    let wrn: Vec<(ModelGraph, usize)> = WideResnetSize::ALL
        .iter()
        .zip(SIZE_GPU_LADDER)
        .map(|(&s, g)| (wide_resnet(s), g))
        .collect();
    run_family("wresnet", wrn, &mut rows);

    let t5s: Vec<(ModelGraph, usize)> = T5Size::ALL
        .iter()
        .zip(SIZE_GPU_LADDER)
        .map(|(&s, g)| (t5(s), g))
        .collect();
    run_family("t5", t5s, &mut rows);

    save_exp1(&rows);

    // Figure 7: normalised throughput per (model, size) group.
    let mut t = Table::new(
        "Figure 7: normalised training throughput (1.00 = best per column)",
        &["model", "gpus", "system", "samples/s", "normalised"],
    );
    let mut csv = Table::new("", &["model", "gpus", "system", "throughput", "normalized"]);
    let mut keys: Vec<(String, usize)> = rows.iter().map(|r| (r.model.clone(), r.gpus)).collect();
    keys.dedup();
    for (model, gpus) in keys {
        let group: Vec<&Exp1Row> = rows
            .iter()
            .filter(|r| r.model == model && r.gpus == gpus)
            .collect();
        let best = group.iter().map(|r| r.throughput).fold(0.0f64, f64::max);
        for r in &group {
            let cells = [
                model.clone(),
                gpus.to_string(),
                r.system.clone(),
                format!("{:.2}", r.throughput),
                format!("{:.2}", r.throughput / best),
            ];
            t.row(&cells);
            csv.row(&cells);
        }
    }
    print!("{}", t.render());
    write_csv("exp1_fig7.csv", &csv);

    // Headline speedups (claims C1).
    for family in ["gpt3", "wresnet", "t5"] {
        let mut best: Option<(f64, String)> = None;
        for r in rows
            .iter()
            .filter(|r| r.family == family && r.system == "aceso")
        {
            for base in rows
                .iter()
                .filter(|b| b.model == r.model && b.gpus == r.gpus && b.system != "aceso")
            {
                let speedup = r.throughput / base.throughput;
                if best.as_ref().is_none_or(|(s, _)| speedup > *s) {
                    best = Some((
                        speedup,
                        format!("{} vs {} on {}", speedup, base.system, r.model),
                    ));
                }
            }
        }
        if let Some((s, d)) = best {
            println!("max Aceso speedup for {family}: {s:.2}x  ({d})");
        }
    }
}
