//! Serve-mode harnesses (not paper experiments).
//!
//! **Latency mode** (default) measures what the cross-request profile
//! cache buys by submitting the same job to an in-process loopback
//! daemon cold (cache miss) and warm (cache hit), and reports
//! end-to-end plus profiling-phase latency for both. A final spooled
//! request (request id + `--spool-dir` checkpointing) measures what
//! crash recovery costs on top of a warm hit. The checkpoint slices
//! live between iterations — the per-evaluation hot path
//! (`eval_latency_us`) is untouched — so the printed overhead is purely
//! the pause/serialise/resume cycles.
//!
//! **Fleet mode** drives the `--reactor` front-end with a mixed client
//! fleet — roughly half idle connection holders, a quarter slow-loris
//! writers that trickle a well-formed request byte by chunk, and a
//! quarter pipelined submitters — with SplitMix64-seeded think times,
//! then merges `{clients, submitted, errors, p50_us, p99_us}` into the
//! snapshot as the `serve_fleet` section (field reference in
//! `docs/BENCHMARKS.md`; `obs_check` gates the committed numbers). Every
//! well-formed request must complete: `errors` other than zero fails
//! the run.
//!
//! **Restart mode** measures what the persistent profile store
//! (`--store-dir`, `docs/STORE.md`) buys across a daemon restart: one
//! daemon pays the cold build and warm cache hits, then fresh daemons
//! sharing the same store directory serve their first request off a
//! store decode instead of a re-profile. Merges
//! `{cold_us, warm_us, restart_us}` into the snapshot as the
//! `serve_restart` section; `obs_check` gates `restart_us` at 1.1×
//! `warm_us` in the committed file.
//!
//! ```console
//! $ cargo run --release -p aceso-bench --bin serve_bench [model] [gpus]
//! $ cargo run --release -p aceso-bench --bin serve_bench fleet [clients] [out.json]
//! $ cargo run --release -p aceso-bench --bin serve_bench restart [out.json]
//! ```

use aceso_bench::harness::{bench_search_path, merge_bench_section};
use aceso_serve::{read_frame, shutdown, submit, submit_pipelined, Request, ServeOptions, Server};
use aceso_util::json::{obj, ToJson, Value};
use aceso_util::table::Table;
use aceso_util::SplitMix64;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("fleet") => {
            let clients = args
                .next()
                .map(|s| s.parse().expect("clients parses"))
                .unwrap_or(512);
            let out = args
                .next()
                .map(PathBuf::from)
                .unwrap_or_else(bench_search_path);
            run_fleet(clients, &out);
        }
        Some("restart") => {
            let out = args
                .next()
                .map(PathBuf::from)
                .unwrap_or_else(bench_search_path);
            run_restart(&out);
        }
        model => run_latency(
            model.unwrap_or("gpt3-2.6b").to_string(),
            std::env::args()
                .nth(2)
                .map(|s| s.parse().expect("gpus parses"))
                .unwrap_or(8),
        ),
    }
}

/// The shared fleet request: one small model so every client hits the
/// same profile-cache key and the measurement isolates the reactor, not
/// repeated profiling.
fn fleet_request(id: Option<String>) -> Request {
    Request {
        model: "deepnet-8l".into(),
        gpus: 2,
        max_iterations: 2,
        request_id: id,
        ..Request::default()
    }
}

/// Drives `clients` mixed clients at an in-process reactor daemon and
/// merges the percentile summary into `out` as `serve_fleet`.
fn run_fleet(clients: usize, out: &std::path::Path) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            reactor: true,
            ..ServeOptions::default()
        },
    )
    .expect("binds");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    // Warm the profile cache so fleet latencies measure fan-in, not one
    // client paying the cold profiling cost for everyone.
    submit(&addr, &fleet_request(None)).expect("warm-up submit succeeds");

    eprintln!("driving {clients} mixed clients at reactor daemon {addr}...");
    let t0 = Instant::now();
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let errors = Arc::new(AtomicU64::new(0));
    let submitted = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    // All clients connect before any submits, so the daemon really holds
    // `clients` concurrent connections while requests flow.
    let connected = Arc::new(Barrier::new(clients));
    let mut handles = Vec::with_capacity(clients);
    for i in 0..clients {
        let (addr, latencies, errors, submitted, done, connected) = (
            addr.clone(),
            latencies.clone(),
            errors.clone(),
            submitted.clone(),
            done.clone(),
            connected.clone(),
        );
        // nproc on CI boxes can be 1 and the fleet is hundreds of
        // threads; small stacks keep that cheap (clients only frame and
        // parse JSON, the searches run daemon-side).
        let handle = std::thread::Builder::new()
            .name(format!("fleet-{i}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                let mut rng = SplitMix64::new(0xF1EE7 ^ i as u64);
                match i % 4 {
                    // Half the fleet: idle holders. They cost the
                    // reactor a slab slot, never a thread or a timeout —
                    // INV-NONBLOCK holds quiet connections indefinitely.
                    0 | 1 => {
                        let stream = TcpStream::connect(&addr).expect("idle connect");
                        connected.wait();
                        while !done.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        drop(stream);
                    }
                    // A quarter: slow-loris writers. The request frame
                    // is well-formed but trickles out in small chunks
                    // with seeded think times; it must still complete.
                    2 => {
                        let mut stream = TcpStream::connect(&addr).expect("slow connect");
                        connected.wait();
                        let req = fleet_request(None);
                        let payload = req.to_json_value().to_string_compact();
                        let bytes = payload.as_bytes();
                        let start = Instant::now();
                        let mut framed = (bytes.len() as u32).to_be_bytes().to_vec();
                        framed.extend_from_slice(bytes);
                        let mut ok = stream.write_all(&framed[..2]).is_ok();
                        let mut at = 2;
                        while ok && at < framed.len() {
                            std::thread::sleep(Duration::from_millis(1 + rng.next_u64() % 4));
                            let end = (at + 7 + (rng.next_u64() % 9) as usize).min(framed.len());
                            ok = stream
                                .write_all(&framed[at..end])
                                .and_then(|()| stream.flush())
                                .is_ok();
                            at = end;
                        }
                        submitted.fetch_add(1, Ordering::Relaxed);
                        if ok && read_until_result(&mut stream) {
                            latencies
                                .lock()
                                .unwrap()
                                .push(start.elapsed().as_micros() as u64);
                        } else {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A quarter: pipelined submitters — two tagged
                    // requests on one connection, written back to back.
                    _ => {
                        connected.wait();
                        std::thread::sleep(Duration::from_millis(rng.next_u64() % 20));
                        let reqs = [
                            fleet_request(Some(format!("fleet-{i}-a"))),
                            fleet_request(Some(format!("fleet-{i}-b"))),
                        ];
                        let start = Instant::now();
                        let outcome = submit_pipelined(&addr, &reqs);
                        let elapsed = start.elapsed().as_micros() as u64;
                        submitted.fetch_add(2, Ordering::Relaxed);
                        match outcome {
                            Ok(results) => {
                                for (_, r) in results {
                                    if r.is_ok() {
                                        latencies.lock().unwrap().push(elapsed);
                                    } else {
                                        errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Err(_) => {
                                errors.fetch_add(2, Ordering::Relaxed);
                            }
                        }
                    }
                }
            })
            .expect("fleet thread spawns");
        handles.push(handle);
    }
    // Submitting roles finish on their own; idle holders wait for them.
    let (idle, active): (Vec<_>, Vec<_>) = handles
        .into_iter()
        .enumerate()
        .partition(|(i, _)| i % 4 < 2);
    for (_, h) in active {
        h.join().expect("client thread survives");
    }
    done.store(true, Ordering::Relaxed);
    for (_, h) in idle {
        h.join().expect("idle thread survives");
    }
    let wall = t0.elapsed();
    shutdown(&addr).expect("shutdown");
    daemon.join().expect("daemon drains");

    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        lat[((lat.len() - 1) as f64 * p).round() as usize]
    };
    let (submitted, errors) = (
        submitted.load(Ordering::Relaxed),
        errors.load(Ordering::Relaxed),
    );
    let (p50, p99) = (pct(0.50), pct(0.99));
    let mut table = Table::new(
        "reactor fleet fan-in: mixed idle / slow-loris / pipelined clients",
        &["clients", "submitted", "errors", "p50", "p99", "wall"],
    );
    table.row(&[
        clients.to_string(),
        submitted.to_string(),
        errors.to_string(),
        format!("{p50} µs"),
        format!("{p99} µs"),
        format!("{wall:.2?}"),
    ]);
    print!("{}", table.render());
    merge_bench_section(
        out,
        "serve_fleet",
        obj([
            ("clients", Value::UInt(clients as u64)),
            ("submitted", Value::UInt(submitted)),
            ("errors", Value::UInt(errors)),
            ("p50_us", Value::UInt(p50)),
            ("p99_us", Value::UInt(p99)),
        ]),
    );
    assert_eq!(errors, 0, "every well-formed fleet request must complete");
}

/// Warm and restart submits both sample this many times and keep the
/// minimum: the figures feed a ratio gate, so load-slow outliers on
/// either side would make it spurious.
const RESTART_SAMPLES: usize = 3;

/// Measures the store-backed restart path: cold build, warm in-memory
/// cache hits, then fresh daemons whose first request is served off the
/// shared `--store-dir` (cache empty, store warm). The store converts
/// the restart's cache miss into a decode, not a re-profile, so
/// `restart_us` lands within a whisker of `warm_us` — `obs_check` holds
/// the committed figures to 1.1×. (The cold figure is context, not a
/// gate: profiling is analytic and the end-to-end time is search-
/// dominated, so cold and warm differ by the profile phase only.)
fn run_restart(out: &std::path::Path) {
    let store = std::env::temp_dir().join(format!("aceso-restart-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    // A model whose profile build is a visible share of the request, so
    // the cold figure actually shows what the store saves on restart.
    let req = Request {
        model: "gpt3-0.35b".into(),
        gpus: 4,
        max_iterations: 8,
        ..Request::default()
    };
    let store_opts = || ServeOptions {
        store_dir: Some(store.clone()),
        ..ServeOptions::default()
    };
    let submit_us = |addr: &str| {
        let t0 = Instant::now();
        submit(addr, &req).expect("submit succeeds");
        t0.elapsed().as_micros() as u64
    };

    // Daemon A: the cold request profiles the model and writes the
    // store entry; the warm requests hit the in-memory cache.
    eprintln!(
        "measuring cold/warm/restart against store dir {}...",
        store.display()
    );
    let server = Server::bind("127.0.0.1:0", store_opts()).expect("binds");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());
    let cold_us = submit_us(&addr);
    let warm_us = (0..RESTART_SAMPLES)
        .map(|_| submit_us(&addr))
        .min()
        .unwrap();
    shutdown(&addr).expect("shutdown");
    daemon.join().expect("daemon drains");

    // Fresh daemons sharing the store dir: each first request pays a
    // cache miss that the store turns into a decode.
    let restart_us = (0..RESTART_SAMPLES)
        .map(|_| {
            let server = Server::bind("127.0.0.1:0", store_opts()).expect("binds");
            let addr = server.local_addr().to_string();
            let daemon = std::thread::spawn(move || server.run());
            let us = submit_us(&addr);
            shutdown(&addr).expect("shutdown");
            daemon.join().expect("daemon drains");
            us
        })
        .min()
        .unwrap();
    let _ = std::fs::remove_dir_all(&store);

    let mut table = Table::new(
        "store-backed restart: cold build vs warm cache vs fresh daemon on a warm store",
        &["cold", "warm", "restart", "restart/warm"],
    );
    table.row(&[
        format!("{cold_us} µs"),
        format!("{warm_us} µs"),
        format!("{restart_us} µs"),
        format!("{:.2}x", restart_us as f64 / warm_us.max(1) as f64),
    ]);
    print!("{}", table.render());
    merge_bench_section(
        out,
        "serve_restart",
        obj([
            ("cold_us", Value::UInt(cold_us)),
            ("warm_us", Value::UInt(warm_us)),
            ("restart_us", Value::UInt(restart_us)),
        ]),
    );
    // Loose smoke bound for fresh runs (ci.sh runs this binary on a
    // possibly loaded machine); the tight 1.1x gate applies to the
    // committed figures via `obs_check`.
    assert!(
        (restart_us as f64) < 1.5 * warm_us as f64,
        "a store-backed restart must stay in the warm-hit envelope \
         (restart {restart_us} µs vs warm {warm_us} µs)"
    );
}

/// Reads frames until the request's terminal frame; true on `result`.
fn read_until_result(stream: &mut TcpStream) -> bool {
    loop {
        match read_frame(stream) {
            Ok(frame) => match frame.get("type").and_then(|t| t.as_str().ok()) {
                Some("result") => return true,
                Some("error") => return false,
                _ => continue,
            },
            Err(_) => return false,
        }
    }
}

/// The original cold/warm/spooled cache-latency comparison.
fn run_latency(model: String, gpus: usize) {
    if aceso_model::zoo::by_name(&model).is_none() {
        eprintln!("unknown model `{model}`");
        std::process::exit(2);
    }

    let spool = std::env::temp_dir().join(format!("aceso-serve-bench-{}", std::process::id()));
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            spool_dir: Some(spool.clone()),
            ..ServeOptions::default()
        },
    )
    .expect("binds");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let req = Request {
        model: model.clone(),
        gpus,
        max_iterations: 16,
        ..Request::default()
    };
    eprintln!("submitting {model} on {gpus} GPUs to loopback daemon at {addr}...");
    let mut table = Table::new(
        "serve-mode latency: cold (cache miss) vs warm (cache hit)",
        &[
            "request",
            "cache",
            "end-to-end",
            "profiling phase",
            "explored",
        ],
    );
    let mut timings = Vec::new();
    for label in ["cold", "warm-1", "warm-2", "warm-spooled"] {
        // The last request opts into checkpoint spooling via a request
        // id — same search, same warm cache, plus the recovery spool.
        let req = Request {
            request_id: (label == "warm-spooled").then(|| "serve-bench".into()),
            ..req.clone()
        };
        let t0 = Instant::now();
        let resp = submit(&addr, &req).expect("submit succeeds");
        let total = t0.elapsed();
        let micros = resp
            .result
            .field("profile_micros")
            .unwrap()
            .as_u64()
            .unwrap();
        let explored = resp.result.field("explored").unwrap().as_u64().unwrap();
        table.row(&[
            label.to_string(),
            resp.cache.clone(),
            format!("{total:.2?}"),
            format!("{micros} µs"),
            explored.to_string(),
        ]);
        timings.push((label, resp.cache.clone(), total, micros));
    }
    shutdown(&addr).expect("shutdown");
    daemon.join().expect("daemon drains");
    let _ = std::fs::remove_dir_all(&spool);

    print!("{}", table.render());
    let (_, _, cold_total, cold_micros) = &timings[0];
    let warm_micros = timings[1..3].iter().map(|t| t.3).min().unwrap();
    let warm_total = timings[1..3].iter().map(|t| t.2).min().unwrap();
    println!(
        "profile-cache speedup: {:.1}x on the profiling phase ({} µs -> {} µs), \
         end-to-end {:.2?} -> {:.2?}",
        *cold_micros as f64 / warm_micros.max(1) as f64,
        cold_micros,
        warm_micros,
        cold_total,
        warm_total,
    );
    let (_, _, spooled_total, _) = &timings[3];
    println!(
        "checkpoint-spool overhead: warm {warm_total:.2?} -> spooled {spooled_total:.2?} \
         ({:+.1}% end-to-end)",
        100.0 * (spooled_total.as_secs_f64() / warm_total.as_secs_f64().max(1e-9) - 1.0),
    );
    assert!(
        warm_micros < *cold_micros,
        "cache hit must cut the profiling phase"
    );
}
