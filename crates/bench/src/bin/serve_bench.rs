//! Serve-mode latency harness (not a paper experiment): measures what
//! the cross-request profile cache buys by submitting the same job to an
//! in-process loopback daemon cold (cache miss) and warm (cache hit),
//! and reports end-to-end plus profiling-phase latency for both. A
//! final spooled request (request id + `--spool-dir` checkpointing)
//! measures what crash recovery costs on top of a warm hit. The
//! checkpoint slices live between iterations — the per-evaluation hot
//! path (`eval_latency_us`) is untouched — so the printed overhead is
//! purely the pause/serialise/resume cycles, a few hundred
//! milliseconds per checkpoint interval at default settings.
//!
//! ```console
//! $ cargo run --release -p aceso-bench --bin serve_bench [model] [gpus]
//! ```

use aceso_serve::{shutdown, submit, Request, ServeOptions, Server};
use aceso_util::table::Table;
use std::time::Instant;

fn main() {
    let model = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "gpt3-2.6b".into());
    let gpus = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("gpus parses"))
        .unwrap_or(8);
    if aceso_model::zoo::by_name(&model).is_none() {
        eprintln!("unknown model `{model}`");
        std::process::exit(2);
    }

    let spool = std::env::temp_dir().join(format!("aceso-serve-bench-{}", std::process::id()));
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            spool_dir: Some(spool.clone()),
            ..ServeOptions::default()
        },
    )
    .expect("binds");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let req = Request {
        model: model.clone(),
        gpus,
        max_iterations: 16,
        ..Request::default()
    };
    eprintln!("submitting {model} on {gpus} GPUs to loopback daemon at {addr}...");
    let mut table = Table::new(
        "serve-mode latency: cold (cache miss) vs warm (cache hit)",
        &[
            "request",
            "cache",
            "end-to-end",
            "profiling phase",
            "explored",
        ],
    );
    let mut timings = Vec::new();
    for label in ["cold", "warm-1", "warm-2", "warm-spooled"] {
        // The last request opts into checkpoint spooling via a request
        // id — same search, same warm cache, plus the recovery spool.
        let req = Request {
            request_id: (label == "warm-spooled").then(|| "serve-bench".into()),
            ..req.clone()
        };
        let t0 = Instant::now();
        let resp = submit(&addr, &req).expect("submit succeeds");
        let total = t0.elapsed();
        let micros = resp
            .result
            .field("profile_micros")
            .unwrap()
            .as_u64()
            .unwrap();
        let explored = resp.result.field("explored").unwrap().as_u64().unwrap();
        table.row(&[
            label.to_string(),
            resp.cache.clone(),
            format!("{total:.2?}"),
            format!("{micros} µs"),
            explored.to_string(),
        ]);
        timings.push((label, resp.cache.clone(), total, micros));
    }
    shutdown(&addr).expect("shutdown");
    daemon.join().expect("daemon drains");
    let _ = std::fs::remove_dir_all(&spool);

    print!("{}", table.render());
    let (_, _, cold_total, cold_micros) = &timings[0];
    let warm_micros = timings[1..3].iter().map(|t| t.3).min().unwrap();
    let warm_total = timings[1..3].iter().map(|t| t.2).min().unwrap();
    println!(
        "profile-cache speedup: {:.1}x on the profiling phase ({} µs -> {} µs), \
         end-to-end {:.2?} -> {:.2?}",
        *cold_micros as f64 / warm_micros.max(1) as f64,
        cold_micros,
        warm_micros,
        cold_total,
        warm_total,
    );
    let (_, _, spooled_total, _) = &timings[3];
    println!(
        "checkpoint-spool overhead: warm {warm_total:.2?} -> spooled {spooled_total:.2?} \
         ({:+.1}% end-to-end)",
        100.0 * (spooled_total.as_secs_f64() / warm_total.as_secs_f64().max(1e-9) - 1.0),
    );
    assert!(
        warm_micros < *cold_micros,
        "cache hit must cut the profiling phase"
    );
}
