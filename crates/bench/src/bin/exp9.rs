//! Exp#9 (Figure 16): memory prediction accuracy.
//!
//! Compares Eq. 1's predicted peak memory (with its deliberate reserved-
//! memory overestimate) against the runtime simulator's allocator-modelled
//! peak, per Exp#1 configuration. The paper reports 14.26% (GPT-3) and
//! 9.14% (Wide-ResNet) average error, dominated by overestimation.

use aceso_bench::harness::{load_exp1, write_csv};
use aceso_util::stats;
use aceso_util::table::Table;

fn main() {
    let Some(rows) = load_exp1() else {
        eprintln!("results/exp1.json not found — run exp1 first");
        std::process::exit(1);
    };
    let mut t = Table::new(
        "Figure 16: predicted vs actual peak memory (GB)",
        &[
            "model",
            "gpus",
            "system",
            "predicted",
            "actual",
            "error %",
            "over?",
        ],
    );
    let mut over = 0usize;
    for r in &rows {
        let p = r.predicted_mem as f64 / 1e9;
        let a = r.actual_mem as f64 / 1e9;
        let err = (p - a).abs() / a * 100.0;
        if p >= a {
            over += 1;
        }
        t.row(&[
            r.model.clone(),
            r.gpus.to_string(),
            r.system.clone(),
            format!("{p:.2}"),
            format!("{a:.2}"),
            format!("{err:.2}"),
            if p >= a {
                "over".into()
            } else {
                "UNDER".to_string()
            },
        ]);
    }
    print!("{}", t.render());
    for family in ["gpt3", "wresnet", "t5"] {
        let (pred, act): (Vec<f64>, Vec<f64>) = rows
            .iter()
            .filter(|r| r.family == family)
            .map(|r| (r.predicted_mem as f64, r.actual_mem as f64))
            .unzip();
        if pred.is_empty() {
            continue;
        }
        println!("{family}: average error {:.2}%", stats::mape(&pred, &act));
    }
    println!(
        "overestimated in {over}/{} cases (paper: overestimation by design,\n\
         14.26% GPT-3 / 9.14% Wide-ResNet average error)",
        rows.len()
    );
    write_csv("exp9_fig16.csv", &t);
}
