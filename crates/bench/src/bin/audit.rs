//! Full invariant audit over the model zoo (the CI-facing twin of
//! `aceso audit`): sweeps every corpus sample through all four analyzers,
//! prints per-sample progress and the merged human-readable report, and
//! optionally writes the JSON report. Exits non-zero on any finding.
//!
//! ```console
//! $ cargo run --release -p aceso-bench --bin audit -- [--smoke] [--json FILE]
//! ```

use aceso_audit::{audit_sample, corpus, AuditOptions, AuditReport};
use std::time::Instant;

fn main() {
    let mut opts = AuditOptions::default();
    let mut json_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--json" => match it.next() {
                Some(path) => json_out = Some(path),
                None => {
                    eprintln!("error: missing value for --json");
                    std::process::exit(2);
                }
            },
            "--epsilon" => {
                opts.epsilon = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --epsilon needs a float value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("error: unknown flag `{other}`");
                eprintln!("usage: audit [--smoke] [--json FILE] [--epsilon E]");
                std::process::exit(2);
            }
        }
    }

    let t0 = Instant::now();
    let samples = corpus(opts.smoke);
    eprintln!(
        "audit corpus: {} samples ({} mode), built in {:.1?}",
        samples.len(),
        if opts.smoke { "smoke" } else { "full" },
        t0.elapsed()
    );

    let mut report = AuditReport::default();
    for sample in &samples {
        let t = Instant::now();
        let before = report.findings.len();
        audit_sample(sample, &opts, &mut report);
        eprintln!(
            "  {:<28} {} configs, {} findings, {:.1?}",
            sample.label,
            sample.configs.len(),
            report.findings.len() - before,
            t.elapsed()
        );
    }

    print!("{}", report.render());
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error writing {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote JSON report to {path}");
    }
    std::process::exit(if report.clean() { 0 } else { 1 });
}
