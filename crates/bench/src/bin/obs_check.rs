//! Observability smoke checker.
//!
//! Two modes:
//!
//! * `obs_check <metrics.json> <events.jsonl>` — validate CLI output:
//!   both files parse with `aceso-util::json`, the metric snapshot has a
//!   non-zero `perf_evaluations`, the candidate counters are consistent
//!   (`accepted + rejected == generated`), and every event line carries
//!   a `kind` known to the schema registry with a contiguous `seq`.
//! * `obs_check` (no args) — run a small metrics-enabled search and
//!   write the `BENCH_search.json` snapshot at the workspace root, then
//!   validate it with the same rules.
//!
//! Exits non-zero with a diagnostic on the first violated rule; `ci.sh`
//! runs both modes.

use aceso_bench::harness::{write_bench_search, ExpEnv};
use aceso_core::SearchOptions;
use aceso_obs::schema::{EVENTS, SCHEMA_VERSION};
use aceso_util::json::Value;

fn fail(msg: &str) -> ! {
    eprintln!("obs_check: FAIL: {msg}");
    std::process::exit(1);
}

fn counter(snapshot: &Value, name: &str) -> u64 {
    snapshot
        .field("counters")
        .and_then(|c| c.field(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|e| fail(&format!("counter {name}: {e:?}")))
}

/// Validates one metric snapshot (either the CLI's `--metrics-out` file
/// or the `metrics` object of `BENCH_search.json`).
fn check_metrics(snapshot: &Value, origin: &str) {
    match snapshot.field("schema_version").and_then(Value::as_u64) {
        Ok(v) if v == SCHEMA_VERSION => {}
        Ok(v) => fail(&format!(
            "{origin}: schema_version {v}, expected {SCHEMA_VERSION}"
        )),
        Err(e) => fail(&format!("{origin}: schema_version: {e:?}")),
    }
    let evals = counter(snapshot, "perf_evaluations");
    if evals == 0 {
        fail(&format!("{origin}: zero configurations evaluated"));
    }
    let generated = counter(snapshot, "candidates_generated");
    let accepted = counter(snapshot, "candidates_accepted");
    let rejected = counter(snapshot, "candidates_rejected");
    if accepted + rejected != generated {
        fail(&format!(
            "{origin}: accepted ({accepted}) + rejected ({rejected}) != generated ({generated})"
        ));
    }
    println!(
        "obs_check: {origin}: {evals} evaluations, {generated} candidates \
         ({accepted} accepted + {rejected} rejected) -- consistent"
    );
}

/// Validates an event stream: every line parses, carries a known kind,
/// and is numbered contiguously.
fn check_events(text: &str, origin: &str) {
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let v = Value::parse(line)
            .unwrap_or_else(|e| fail(&format!("{origin} line {}: unparseable: {e:?}", i + 1)));
        let seq = v
            .field("seq")
            .and_then(Value::as_u64)
            .unwrap_or_else(|e| fail(&format!("{origin} line {}: seq: {e:?}", i + 1)));
        if seq != i as u64 {
            fail(&format!("{origin} line {}: seq {seq}, expected {i}", i + 1));
        }
        let kind = v
            .field("kind")
            .and_then(Value::as_str)
            .unwrap_or_else(|e| fail(&format!("{origin} line {}: kind: {e:?}", i + 1)));
        if !EVENTS.iter().any(|spec| spec.kind == kind) {
            fail(&format!(
                "{origin} line {}: unknown event kind `{kind}`",
                i + 1
            ));
        }
        lines += 1;
    }
    if lines == 0 {
        fail(&format!("{origin}: empty event stream"));
    }
    println!("obs_check: {origin}: {lines} events -- all parse, kinds known");
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [metrics_path, events_path] => {
            let metrics = Value::parse(&read(metrics_path))
                .unwrap_or_else(|e| fail(&format!("{metrics_path}: unparseable: {e:?}")));
            check_metrics(&metrics, metrics_path);
            check_events(&read(events_path), events_path);
        }
        [] => {
            let env = ExpEnv::new(
                aceso_model::zoo::gpt3_custom("bench", 4, 512, 8, 256, 8192, 64),
                4,
            );
            let (result, report) = env
                .run_aceso_observed(SearchOptions {
                    max_iterations: 24,
                    ..SearchOptions::default()
                })
                .unwrap_or_else(|e| fail(&format!("search failed: {e}")));
            let path = write_bench_search(&result, &report);
            let doc = Value::parse(&read(&path.display().to_string()))
                .unwrap_or_else(|e| fail(&format!("BENCH_search.json: unparseable: {e:?}")));
            let metrics = doc
                .field("metrics")
                .unwrap_or_else(|e| fail(&format!("BENCH_search.json: metrics: {e:?}")));
            check_metrics(metrics, "BENCH_search.json");
            check_events(&report.events_jsonl(), "search event stream");
        }
        _ => {
            eprintln!("usage: obs_check [<metrics.json> <events.jsonl>]");
            std::process::exit(2);
        }
    }
    println!("obs_check: OK");
}
