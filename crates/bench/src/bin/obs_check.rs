//! Observability smoke checker.
//!
//! Two modes:
//!
//! * `obs_check <metrics.json> <events.jsonl>` — validate CLI output:
//!   both files parse with `aceso-util::json`, the metric snapshot has a
//!   non-zero `perf_evaluations`, the candidate counters are consistent
//!   (`accepted + rejected == generated`), and every event line carries
//!   a `kind` known to the schema registry with a contiguous `seq`.
//! * `obs_check` (no args) — run a small metrics-enabled search three
//!   times, keep the median-latency run, and gate it against the
//!   *committed* `BENCH_search.json` (mean `eval_latency_us` must not
//!   regress by more than 1.5×; `configs_per_sec` is reported
//!   alongside), then refresh the snapshot from that median run and
//!   validate it with the same rules. The median discards both
//!   lucky-fast outliers (which would poison the committed baseline)
//!   and load-slow ones (which would trip the gate spuriously); the
//!   search itself is deterministic, so runs differ only in timing.
//!
//! Exits non-zero with a diagnostic on the first violated rule; `ci.sh`
//! runs both modes.

use aceso_bench::harness::{write_bench_search, ExpEnv};
use aceso_core::{SearchOptions, SearchResult};
use aceso_obs::schema::{EVENTS, SCHEMA_VERSION};
use aceso_obs::ObsReport;
use aceso_util::json::Value;

fn fail(msg: &str) -> ! {
    eprintln!("obs_check: FAIL: {msg}");
    std::process::exit(1);
}

fn counter(snapshot: &Value, name: &str) -> u64 {
    snapshot
        .field("counters")
        .and_then(|c| c.field(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|e| fail(&format!("counter {name}: {e:?}")))
}

/// Validates one metric snapshot (either the CLI's `--metrics-out` file
/// or the `metrics` object of `BENCH_search.json`).
fn check_metrics(snapshot: &Value, origin: &str) {
    match snapshot.field("schema_version").and_then(Value::as_u64) {
        Ok(v) if v == SCHEMA_VERSION => {}
        Ok(v) => fail(&format!(
            "{origin}: schema_version {v}, expected {SCHEMA_VERSION}"
        )),
        Err(e) => fail(&format!("{origin}: schema_version: {e:?}")),
    }
    let evals = counter(snapshot, "perf_evaluations");
    if evals == 0 {
        fail(&format!("{origin}: zero configurations evaluated"));
    }
    let generated = counter(snapshot, "candidates_generated");
    let accepted = counter(snapshot, "candidates_accepted");
    let rejected = counter(snapshot, "candidates_rejected");
    if accepted + rejected != generated {
        fail(&format!(
            "{origin}: accepted ({accepted}) + rejected ({rejected}) != generated ({generated})"
        ));
    }
    let incremental = counter(snapshot, "perf_incremental_hits");
    let full = counter(snapshot, "perf_full_evals");
    if incremental + full != evals {
        fail(&format!(
            "{origin}: incremental ({incremental}) + full ({full}) != evaluations ({evals})"
        ));
    }
    println!(
        "obs_check: {origin}: {evals} evaluations, {generated} candidates \
         ({accepted} accepted + {rejected} rejected) -- consistent"
    );
}

/// Validates an event stream: every line parses, carries a known kind,
/// and is numbered contiguously.
fn check_events(text: &str, origin: &str) {
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let v = Value::parse(line)
            .unwrap_or_else(|e| fail(&format!("{origin} line {}: unparseable: {e:?}", i + 1)));
        let seq = v
            .field("seq")
            .and_then(Value::as_u64)
            .unwrap_or_else(|e| fail(&format!("{origin} line {}: seq: {e:?}", i + 1)));
        if seq != i as u64 {
            fail(&format!("{origin} line {}: seq {seq}, expected {i}", i + 1));
        }
        let kind = v
            .field("kind")
            .and_then(Value::as_str)
            .unwrap_or_else(|e| fail(&format!("{origin} line {}: kind: {e:?}", i + 1)));
        if !EVENTS.iter().any(|spec| spec.kind == kind) {
            fail(&format!(
                "{origin} line {}: unknown event kind `{kind}`",
                i + 1
            ));
        }
        lines += 1;
    }
    if lines == 0 {
        fail(&format!("{origin}: empty event stream"));
    }
    println!("obs_check: {origin}: {lines} events -- all parse, kinds known");
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

/// The perf-gate figures carried by one `BENCH_search.json` snapshot.
struct PerfFigures {
    /// Mean perf-model evaluation latency, microseconds.
    mean_latency_us: f64,
    /// End-to-end search throughput, configurations per second.
    configs_per_sec: f64,
}

/// Extracts the perf-gate figures from a `BENCH_search.json` document.
/// Tolerates older schema versions: the gate only needs the latency
/// histogram and the throughput figure, both present since v1.
fn perf_figures(doc: &Value, origin: &str) -> PerfFigures {
    let hist = doc
        .field("metrics")
        .and_then(|m| m.field("histograms"))
        .and_then(|h| h.field("eval_latency_us"))
        .unwrap_or_else(|e| fail(&format!("{origin}: eval_latency_us histogram: {e:?}")));
    let count = hist
        .field("count")
        .and_then(Value::as_u64)
        .unwrap_or_else(|e| fail(&format!("{origin}: eval_latency_us count: {e:?}")));
    let sum = hist
        .field("sum")
        .and_then(Value::as_f64)
        .unwrap_or_else(|e| fail(&format!("{origin}: eval_latency_us sum: {e:?}")));
    if count == 0 {
        fail(&format!("{origin}: empty eval_latency_us histogram"));
    }
    let configs_per_sec = doc
        .field("configs_per_sec")
        .and_then(Value::as_f64)
        .unwrap_or_else(|e| fail(&format!("{origin}: configs_per_sec: {e:?}")));
    PerfFigures {
        mean_latency_us: sum / count as f64,
        configs_per_sec,
    }
}

/// Maximum tolerated mean-latency regression vs the committed baseline.
/// Calibrated above the observed median-of-3 noise band on a loaded
/// shared machine (~1.25×) while still far below what any algorithmic
/// regression in the evaluation hot path costs (2×+).
const MAX_LATENCY_REGRESSION: f64 = 1.5;

/// Number of search runs in no-args mode; the median-latency run is
/// gated and saved. A single run's mean latency swings well past the
/// gate limit under transient machine load.
const GATE_RUNS: usize = 3;

/// Compares the fresh run against the committed baseline figures. Mean
/// evaluation latency is the gate (wall-clock throughput is reported but
/// not gated — it is far noisier on shared CI machines).
fn perf_gate(baseline: &PerfFigures, fresh: &PerfFigures) {
    let ratio = fresh.mean_latency_us / baseline.mean_latency_us;
    println!(
        "obs_check: perf gate: mean eval_latency_us {:.3} -> {:.3} ({ratio:.2}x), \
         configs_per_sec {:.0} -> {:.0}",
        baseline.mean_latency_us,
        fresh.mean_latency_us,
        baseline.configs_per_sec,
        fresh.configs_per_sec,
    );
    if ratio > MAX_LATENCY_REGRESSION {
        fail(&format!(
            "mean eval_latency_us regressed {ratio:.2}x over the committed \
             BENCH_search.json (limit {MAX_LATENCY_REGRESSION}x) — \
             investigate before refreshing the baseline"
        ));
    }
}

/// Gates the `serve_fleet` fan-in section (written by `serve_bench
/// fleet` and carried across snapshot refreshes): the committed numbers
/// must come from a fleet of at least 512 mixed clients in which every
/// well-formed request completed, with sane percentiles.
fn check_serve_fleet(doc: &Value) {
    let fleet = doc.field("serve_fleet").unwrap_or_else(|e| {
        fail(&format!(
            "BENCH_search.json: serve_fleet section missing ({e:?}) — \
             run `serve_bench fleet` to regenerate it"
        ))
    });
    let get = |name: &str| {
        fleet
            .field(name)
            .and_then(Value::as_u64)
            .unwrap_or_else(|e| fail(&format!("serve_fleet.{name}: {e:?}")))
    };
    let (clients, submitted, errors) = (get("clients"), get("submitted"), get("errors"));
    let (p50, p99) = (get("p50_us"), get("p99_us"));
    if clients < 512 {
        fail(&format!(
            "serve_fleet: {clients} clients, the committed fleet must hold >= 512"
        ));
    }
    if errors != 0 {
        fail(&format!(
            "serve_fleet: {errors} errored well-formed requests (must be 0)"
        ));
    }
    if submitted == 0 || p50 == 0 || p50 > p99 {
        fail(&format!(
            "serve_fleet: implausible figures (submitted {submitted}, p50 {p50} µs, p99 {p99} µs)"
        ));
    }
    println!(
        "obs_check: serve_fleet: {clients} clients, {submitted} requests, \
         0 errors, p50 {p50} µs / p99 {p99} µs -- gated"
    );
}

/// Maximum tolerated `restart_us` / `warm_us` ratio in the committed
/// `serve_restart` section: a daemon restarting onto a warm
/// `--store-dir` must serve its first request within 10% of a warm
/// in-memory cache hit, because the store converts the restart's cache
/// miss into a decode rather than a re-profile (`docs/STORE.md`).
const MAX_RESTART_RATIO: f64 = 1.1;

/// Gates the `serve_restart` section (written by `serve_bench restart`
/// and carried across snapshot refreshes).
fn check_serve_restart(doc: &Value) {
    let restart = doc.field("serve_restart").unwrap_or_else(|e| {
        fail(&format!(
            "BENCH_search.json: serve_restart section missing ({e:?}) — \
             run `serve_bench restart` to regenerate it"
        ))
    });
    let get = |name: &str| {
        restart
            .field(name)
            .and_then(Value::as_u64)
            .unwrap_or_else(|e| fail(&format!("serve_restart.{name}: {e:?}")))
    };
    let (cold, warm, restarted) = (get("cold_us"), get("warm_us"), get("restart_us"));
    if warm == 0 || cold == 0 || restarted == 0 {
        fail(&format!(
            "serve_restart: implausible figures (cold {cold} µs, warm {warm} µs, \
             restart {restarted} µs)"
        ));
    }
    let ratio = restarted as f64 / warm as f64;
    if ratio > MAX_RESTART_RATIO {
        fail(&format!(
            "serve_restart: restart {restarted} µs is {ratio:.2}x warm {warm} µs \
             (limit {MAX_RESTART_RATIO}x) — the store-backed restart path \
             regressed; run `serve_bench restart` on a quiet machine to refresh"
        ));
    }
    println!(
        "obs_check: serve_restart: cold {cold} µs, warm {warm} µs, \
         restart {restarted} µs ({ratio:.2}x warm) -- gated"
    );
}

/// Mean `eval_latency_us` of one observed run, read from its metric
/// snapshot.
fn run_mean_latency_us(report: &ObsReport) -> f64 {
    let snapshot = Value::parse(&report.metrics_json())
        .unwrap_or_else(|e| fail(&format!("metric snapshot: unparseable: {e:?}")));
    let hist = snapshot
        .field("histograms")
        .and_then(|h| h.field("eval_latency_us"))
        .unwrap_or_else(|e| fail(&format!("metric snapshot: eval_latency_us: {e:?}")));
    let count = hist
        .field("count")
        .and_then(Value::as_u64)
        .unwrap_or_else(|e| fail(&format!("metric snapshot: eval_latency_us count: {e:?}")));
    let sum = hist
        .field("sum")
        .and_then(Value::as_f64)
        .unwrap_or_else(|e| fail(&format!("metric snapshot: eval_latency_us sum: {e:?}")));
    if count == 0 {
        fail("metric snapshot: empty eval_latency_us histogram");
    }
    sum / count as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [metrics_path, events_path] => {
            let metrics = Value::parse(&read(metrics_path))
                .unwrap_or_else(|e| fail(&format!("{metrics_path}: unparseable: {e:?}")));
            check_metrics(&metrics, metrics_path);
            check_events(&read(events_path), events_path);
        }
        [] => {
            // Capture the committed baseline before the refresh clobbers it.
            let baseline_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_search.json");
            let baseline = std::fs::read_to_string(&baseline_path).ok().map(|text| {
                let doc = Value::parse(&text).unwrap_or_else(|e| {
                    fail(&format!("committed BENCH_search.json: unparseable: {e:?}"))
                });
                perf_figures(&doc, "committed BENCH_search.json")
            });

            let env = ExpEnv::new(
                aceso_model::zoo::gpt3_custom("bench", 4, 512, 8, 256, 8192, 64),
                4,
            );
            // The search is deterministic under an iteration budget, so
            // repeated runs differ only in timing. Gate and save the
            // median-latency run of GATE_RUNS: a single run's mean is
            // hostage to machine load, and the fastest run would commit
            // an unrepeatable floor as the next baseline.
            let opts = SearchOptions {
                max_iterations: 24,
                ..SearchOptions::default()
            };
            let threads = opts.resolved_threads();
            let mut runs: Vec<(SearchResult, ObsReport, f64)> = Vec::with_capacity(GATE_RUNS);
            for run in 0..GATE_RUNS {
                let (result, report) = env
                    .run_aceso_observed(opts.clone())
                    .unwrap_or_else(|e| fail(&format!("search failed: {e}")));
                let mean = run_mean_latency_us(&report);
                println!(
                    "obs_check: gate run {}/{GATE_RUNS}: mean eval_latency_us {mean:.3}",
                    run + 1
                );
                runs.push((result, report, mean));
            }
            runs.sort_by(|a, b| a.2.total_cmp(&b.2));
            let (result, report, _) = runs.swap_remove(runs.len() / 2);
            let path = write_bench_search(&result, &report, threads);
            let doc = Value::parse(&read(&path.display().to_string()))
                .unwrap_or_else(|e| fail(&format!("BENCH_search.json: unparseable: {e:?}")));
            let metrics = doc
                .field("metrics")
                .unwrap_or_else(|e| fail(&format!("BENCH_search.json: metrics: {e:?}")));
            check_metrics(metrics, "BENCH_search.json");
            check_serve_fleet(&doc);
            check_serve_restart(&doc);
            check_events(&report.events_jsonl(), "search event stream");
            match baseline {
                Some(b) => perf_gate(&b, &perf_figures(&doc, "fresh BENCH_search.json")),
                None => println!("obs_check: no committed baseline — perf gate skipped"),
            }
        }
        _ => {
            eprintln!("usage: obs_check [<metrics.json> <events.jsonl>]");
            std::process::exit(2);
        }
    }
    println!("obs_check: OK");
}
