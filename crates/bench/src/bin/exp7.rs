//! Exp#7 (Figure 14): robustness to the initial configuration.
//!
//! The search starts from three different configurations — the default
//! balanced one, `imbalance-op` (first stage overloaded with operators)
//! and `imbalance-GPU` (half the devices on the first stage) — and should
//! converge to similar quality (paper Fig. 14).

use aceso_bench::harness::{aceso_opts_for, full_scale, write_csv, ExpEnv};
use aceso_config::{balanced_init, imbalance_gpu_init, imbalance_op_init};
use aceso_core::SearchOptions;
use aceso_model::zoo::{gpt3, Gpt3Size};
use aceso_util::table::Table;

fn main() {
    let (model, gpus, stages) = if full_scale() {
        (gpt3(Gpt3Size::S6_7b), 16, 4)
    } else {
        (gpt3(Gpt3Size::S1_3b), 4, 4)
    };
    eprintln!("== {} on {gpus} GPUs, {stages} stages ==", model.name);
    let env = ExpEnv::new(model, gpus);

    let inits = [
        (
            "balanced",
            balanced_init(&env.model, &env.cluster, stages).expect("balanced init"),
        ),
        (
            "imbalance-op",
            imbalance_op_init(&env.model, &env.cluster, stages).expect("imbalance-op init"),
        ),
        (
            "imbalance-GPU",
            imbalance_gpu_init(&env.model, &env.cluster, stages).expect("imbalance-gpu init"),
        ),
    ];

    let mut summary = Table::new(
        "Figure 14: converged estimate by initial configuration",
        &["initial config", "init score (s)", "final best (s)"],
    );
    let mut csv = Table::new("", &["init", "elapsed_s", "best_score"]);
    let mut finals = Vec::new();
    for (label, init) in inits {
        let opts = SearchOptions {
            initial: Some(init.clone()),
            ..aceso_opts_for(full_scale(), env.model.len())
        };
        let init_score = {
            let pm = aceso_perf::PerfModel::new(&env.model, &env.cluster, &env.db);
            pm.evaluate_unchecked(&init).score()
        };
        let r = env.run_aceso(opts).expect("search runs");
        let final_score = r.top_configs[0].score;
        finals.push(final_score);
        summary.row(&[
            label.to_string(),
            format!("{init_score:.2}"),
            format!("{final_score:.2}"),
        ]);
        for tr in &r.traces {
            for p in &tr.convergence {
                csv.row(&[
                    label.to_string(),
                    format!("{:.2}", p.elapsed),
                    format!("{:.4}", p.best_score),
                ]);
            }
        }
    }
    print!("{}", summary.render());
    let best = finals.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = finals.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nSpread across initial configs: {:.1}% (paper: converges to similar\n\
         configurations from all three starting points)",
        (worst / best - 1.0) * 100.0
    );
    write_csv("exp7_fig14_summary.csv", &summary);
    write_csv("exp7_fig14_curves.csv", &csv);
}
