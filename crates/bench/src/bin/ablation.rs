//! Ablation study of Aceso's design choices (beyond the paper's Exp#5/#6
//! heuristic ablations): each §4.2/§4.3 optimisation is disabled in turn
//! and the search re-run under the same budget.
//!
//! * `no-finetune`   — drop the op-level fine-tuning pass (§4.2)
//! * `no-rc-attach`  — don't attach the recompute fix-up to primitives (§4.3)
//! * `no-relay`      — no relay form of op moves (§4.3)
//! * `no-secondary`  — only the top-1 bottleneck is ever tried (§3.2.3)
//! * `branch-1`      — no backtracking breadth in the multi-hop search
//! * `+zero-ext`     — ADDS the ZeRO-1 extension primitives (the paper's
//!   "can be extended with new primitives" claim; negative % = it helps)

use aceso_bench::harness::{aceso_opts_for, full_scale, write_csv, ExpEnv};
use aceso_core::primitives::GenOptions;
use aceso_core::SearchOptions;
use aceso_model::zoo::{gpt3, t5, wide_resnet, Gpt3Size, T5Size, WideResnetSize};
use aceso_model::ModelGraph;
use aceso_util::table::Table;

fn variants(base: &SearchOptions) -> Vec<(&'static str, SearchOptions)> {
    vec![
        ("full", base.clone()),
        (
            "no-finetune",
            SearchOptions {
                fine_tune: false,
                ..base.clone()
            },
        ),
        (
            "no-rc-attach",
            SearchOptions {
                gen_options: GenOptions {
                    attach_rc: false,
                    ..GenOptions::default()
                },
                ..base.clone()
            },
        ),
        (
            "no-relay",
            SearchOptions {
                gen_options: GenOptions {
                    relay_moves: false,
                    ..GenOptions::default()
                },
                ..base.clone()
            },
        ),
        (
            "no-secondary",
            SearchOptions {
                max_bottlenecks: 1,
                ..base.clone()
            },
        ),
        (
            "branch-1",
            SearchOptions {
                branch_limit: 1,
                ..base.clone()
            },
        ),
        (
            "+zero-ext",
            SearchOptions {
                gen_options: GenOptions {
                    enable_zero: true,
                    ..GenOptions::default()
                },
                ..base.clone()
            },
        ),
    ]
}

fn main() {
    // Large-enough problems under a deliberately tight budget: with slack
    // budgets every variant converges to the same configuration and the
    // ablation only shows in exploration counts; scarcity is what the
    // optimisations buy time under.
    let settings: Vec<(ModelGraph, usize)> = vec![
        (gpt3(Gpt3Size::S6_7b), 16),
        (wide_resnet(WideResnetSize::S6_8b), 16),
        (t5(T5Size::S11b), 16),
    ];
    let mut t = Table::new(
        "Ablation: predicted iteration time (s) with each optimisation removed",
        &["model", "variant", "best (s)", "vs full", "explored"],
    );
    let _ = &full_scale; // settings fixed; only budgets scale
    for (model, gpus) in settings {
        eprintln!("== {} on {gpus} GPUs ==", model.name);
        let env = ExpEnv::new(model, gpus);
        let mut base = aceso_opts_for(full_scale(), env.model.len());
        if !full_scale() {
            base.time_budget = Some(std::time::Duration::from_secs(6));
        }
        let mut full_score = f64::NAN;
        for (label, opts) in variants(&base) {
            let r = env.run_aceso(opts).expect("search runs");
            let score = r.top_configs[0].score;
            if label == "full" {
                full_score = score;
            }
            t.row(&[
                env.model.name.clone(),
                label.to_string(),
                format!("{score:.2}"),
                format!("{:+.1}%", (score / full_score - 1.0) * 100.0),
                r.explored.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\nPositive % = the removed optimisation was paying for itself under\n\
         this budget. Small negative values are search-path noise (removing\n\
         a knob reroutes the stochastic exploration); large ones would mean\n\
         a design choice actively hurts — none should appear."
    );
    write_csv("ablation.csv", &t);
}
