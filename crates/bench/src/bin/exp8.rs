//! Exp#8 (Figure 15): iteration-time prediction accuracy.
//!
//! Compares the analytic performance model's predicted iteration time with
//! the runtime simulator's "actual" execution for every configuration
//! measured in Exp#1. The paper reports 2.70% average error for GPT-3 and
//! 7.29% for Wide-ResNet.

use aceso_bench::harness::{load_exp1, write_csv};
use aceso_util::stats;
use aceso_util::table::Table;

fn main() {
    let Some(rows) = load_exp1() else {
        eprintln!("results/exp1.json not found — run exp1 first");
        std::process::exit(1);
    };
    let mut t = Table::new(
        "Figure 15: predicted vs actual iteration time (s)",
        &["model", "gpus", "system", "predicted", "actual", "error %"],
    );
    for r in &rows {
        let err = (r.predicted_time - r.iteration_time).abs() / r.iteration_time * 100.0;
        t.row(&[
            r.model.clone(),
            r.gpus.to_string(),
            r.system.clone(),
            format!("{:.2}", r.predicted_time),
            format!("{:.2}", r.iteration_time),
            format!("{err:.2}"),
        ]);
    }
    print!("{}", t.render());
    for family in ["gpt3", "wresnet", "t5"] {
        let (pred, act): (Vec<f64>, Vec<f64>) = rows
            .iter()
            .filter(|r| r.family == family)
            .map(|r| (r.predicted_time, r.iteration_time))
            .unzip();
        if pred.is_empty() {
            continue;
        }
        println!("{family}: average error {:.2}%", stats::mape(&pred, &act));
    }
    println!("(paper: 2.70% GPT-3, 7.29% Wide-ResNet)");
    write_csv("exp8_fig15.csv", &t);
}
