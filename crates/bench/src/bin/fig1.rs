//! Figure 1: configuration-space cardinality vs model layers and number of
//! mechanisms (GPT on 16 devices).

use aceso_bench::harness::write_csv;
use aceso_model::space;
use aceso_util::table::Table;

fn main() {
    let devices = 16u64;
    let mut t = Table::new(
        "Figure 1: log10(#configurations), GPT on 16 devices",
        &["layers", "2 mechanisms", "3 mechanisms", "4 mechanisms"],
    );
    for layers in [4u64, 8, 12, 16, 20, 24, 28, 32] {
        t.row(&[
            layers.to_string(),
            format!("{:.1}", space::log10_configs_2mech(layers, devices)),
            format!("{:.1}", space::log10_configs_3mech(layers, devices)),
            format!("{:.1}", space::log10_configs_4mech(layers, devices)),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nShape check: counts grow exponentially with layers and jump with\n\
         each added mechanism — a 32-layer model with 4 mechanisms exceeds\n\
         10^{:.0} configurations, matching the paper's log-scale explosion.",
        space::log10_configs_4mech(32, devices)
    );
    write_csv("fig1.csv", &t);
}
