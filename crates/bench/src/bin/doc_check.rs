//! Documentation-consistency gate.
//!
//! `ci.sh` runs this binary after the test suite. It fails (exit 1) when
//! any `docs/*.md`, `README.md`, or `results/README.md` mentions:
//!
//! * a `--flag` the `aceso` binary does not advertise in its usage text
//!   ([`aceso::cli::USAGE`]) — external-tool flags (cargo's) are
//!   allowlisted;
//! * a backticked `snake_case` token in a markdown table row that is not
//!   a registered counter, event kind, event field, or histogram
//!   ([`aceso::obs::schema`]) — structural/wire field names are
//!   allowlisted;
//! * a stale schema version: the phrase `checkpoint schema version: N`
//!   must match [`aceso::search::CHECKPOINT_SCHEMA_VERSION`], the phrase
//!   `store schema version: N` must match
//!   [`aceso::store::STORE_SCHEMA_VERSION`], and any other
//!   `schema version: N` / `` `schema_version` ``: N must match
//!   [`aceso::obs::SCHEMA_VERSION`].
//!
//! The registries are the single source of truth; this gate only keeps
//! the prose from drifting behind them.

use aceso::cli::USAGE;
use aceso::obs::schema::{COUNTERS, EVENTS, HISTOGRAMS};
use aceso::obs::SCHEMA_VERSION;
use aceso::search::CHECKPOINT_SCHEMA_VERSION;
use aceso::store::STORE_SCHEMA_VERSION;

/// Flags that belong to external tools (cargo) which the docs may
/// legitimately mention without the `aceso` binary advertising them.
const EXTERNAL_FLAGS: &[&str] = &[
    "--release",
    "--bin",
    "--test",
    "--example",
    "--workspace",
    "--quiet",
    "--all-targets",
];

/// Backticked snake_case tokens that appear in doc table rows but name
/// wire-protocol fields, JSON structure, or keyed metric families rather
/// than schema registry entries. Anything not here and not in the
/// registry fails the gate.
const STRUCTURAL_TOKENS: &[&str] = &[
    // JSON snapshot / event-stream structure (docs/OBSERVABILITY.md).
    "schema_version",
    "counters",
    "histograms",
    "count",
    "sum",
    "buckets",
    "audit_findings",
    "seq",
    "kind",
    "wall_time_secs",
    // BENCH_search.json fields and the tools that write/gate them
    // (docs/BENCHMARKS.md).
    "obs_check",
    "serve_bench",
    "configs_per_sec",
    "serve_fleet",
    "clients",
    "submitted",
    "errors",
    "p50_us",
    "p99_us",
    "serve_restart",
    "cold_us",
    "warm_us",
    "restart_us",
    // Store file-format fields (docs/STORE.md).
    "store_schema_version",
    "checksum",
    "model_fp",
    "cluster_fp",
    "cluster",
    "precision",
    "profiling_seconds_bits",
    "sigs",
    "counts",
    "tps",
    "dims",
    "batches",
    "times_bits",
    // Wire-protocol frame fields (docs/SERVER.md).
    "request_id",
    "type",
    "code",
    "phase",
    "cache",
    "event",
    "result",
    "metrics",
    "protocol_version",
    "model",
    "gpus",
    "stages",
    "zero",
    "budget_secs",
    "plan",
    "search_threads",
    "best_time",
    "best_oom",
    "error",
    "message",
    "length",
    "timeout",
    // Audit finding fields (docs/ANALYSIS.md).
    "rule",
    "severity",
    "location",
    "detail",
    // Resource names (docs/SEARCH.md, docs/OBSERVABILITY.md prose).
    "compute",
    "communication",
    "memory",
    // Simulator schedule names.
    "gpipe",
    // Keyed chaos metric family and its fault-kind keys
    // (docs/OBSERVABILITY.md, docs/RELIABILITY.md).
    "chaos_faults_injected",
    "eio",
    "enospc",
    "short_write",
    "rename_fail",
    "crash",
    // Covering-test names and std idioms cited in the fault matrix
    // (docs/RELIABILITY.md); tests/chaos_doc.rs checks the test names
    // actually exist, this gate only needs to know they are not schema
    // tokens.
    "store_direct_write_mutant_is_caught_and_shrunk",
    "write_atomic_cleans_its_temp_on_rename_failure",
    "every_truncation_degrades_typed",
    "shared_store_daemons_race_eviction_against_load_without_errors",
    "no_counter_is_silently_dead",
    "two_hundred_seeded_schedules_violate_no_oracle",
    "submit_with_retries_deadline",
    "retry_deadline_bounds_total_wall_clock",
    "catch_unwind",
];

/// The documentation set the gate covers.
fn doc_paths() -> Vec<std::path::PathBuf> {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut paths = vec![root.join("README.md"), root.join("results/README.md")];
    let docs = root.join("docs");
    let mut entries: Vec<_> = std::fs::read_dir(&docs)
        .unwrap_or_else(|e| fail(&format!("cannot list {}: {e}", docs.display())))
        .map(|e| e.expect("readable docs entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    entries.sort();
    paths.extend(entries);
    paths
}

fn fail(msg: &str) -> ! {
    eprintln!("doc_check: FAIL: {msg}");
    std::process::exit(1);
}

/// Every `--flag` token in `text` (same shape the usage text uses).
fn flag_tokens(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("--") {
        let start = i + pos;
        let end = bytes[start + 2..]
            .iter()
            .position(|b| !(b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'-'))
            .map_or(text.len(), |n| start + 2 + n);
        // Require a letter right after the dashes (skips `---` rules and
        // em-dash-like runs) and a non-dash boundary before them.
        let preceded_by_dash = start > 0 && bytes[start - 1] == b'-';
        if end > start + 2 && bytes[start + 2].is_ascii_lowercase() && !preceded_by_dash {
            out.push(text[start..end].trim_end_matches('-').to_string());
        }
        i = start + 2;
    }
    out
}

/// Backticked snake_case tokens in markdown table rows (lines starting
/// with `|`).
fn table_row_tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in text.lines() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let Some(len) = rest[open + 1..].find('`') else {
                break;
            };
            let token = &rest[open + 1..open + 1 + len];
            if !token.is_empty()
                && token
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                && token.chars().next().unwrap().is_ascii_lowercase()
            {
                out.push(token.to_string());
            }
            rest = &rest[open + 1 + len + 1..];
        }
    }
    out
}

/// Parses the unsigned integer starting at the first digit at or after
/// `from`, provided only `: ` / whitespace separates it.
fn version_after(text: &str, from: usize) -> Option<u64> {
    let tail = text[from..]
        .trim_start_matches(|c: char| c == ':' || c == '`' || c.is_whitespace())
        .trim_start_matches(|c: char| c == '=' || c.is_whitespace());
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn check_file(path: &std::path::Path, failures: &mut Vec<String>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let name = path.file_name().unwrap().to_string_lossy().to_string();
    let in_docs = path.parent().is_some_and(|p| p.ends_with("docs"));

    // 1. Every mentioned flag must exist.
    for flag in flag_tokens(&text) {
        let known = USAGE.contains(&flag) || EXTERNAL_FLAGS.contains(&flag.as_str());
        if !known {
            failures.push(format!(
                "{name}: flag `{flag}` is not advertised by the aceso binary \
                 (aceso::cli::USAGE) and is not an allowlisted external flag"
            ));
        }
    }

    // 2. Table-row schema tokens must be registered (docs/ only — README
    // tables describe repo layout, not the schema).
    if in_docs {
        for token in table_row_tokens(&text) {
            let registered = COUNTERS.iter().any(|(n, _)| *n == token)
                || HISTOGRAMS.iter().any(|(n, _, _)| *n == token)
                || EVENTS
                    .iter()
                    .any(|spec| spec.kind == token || spec.fields.iter().any(|f| f.name == token))
                || STRUCTURAL_TOKENS.contains(&token.as_str());
            if !registered {
                failures.push(format!(
                    "{name}: table row mentions `{token}`, which is not a \
                     registered counter/event/field/histogram (aceso::obs::schema) \
                     or allowlisted structural token"
                ));
            }
        }
    }

    // 3. Stated schema versions must be current.
    let lower = text.to_lowercase();
    let mut i = 0;
    while let Some(pos) = lower[i..].find("schema version") {
        let at = i + pos;
        i = at + "schema version".len();
        let Some(stated) = version_after(&lower, i) else {
            continue; // prose like "schema version history"
        };
        let prefix = lower[..at].trim_end();
        let is_checkpoint = prefix.ends_with("checkpoint");
        let is_store = prefix.ends_with("store");
        let (expected, family) = if is_checkpoint {
            (CHECKPOINT_SCHEMA_VERSION, "checkpoint")
        } else if is_store {
            (STORE_SCHEMA_VERSION, "store")
        } else {
            (SCHEMA_VERSION, "observability")
        };
        if stated != expected {
            failures.push(format!(
                "{name}: states {family} schema version {stated}, but the \
                 current version is {expected}"
            ));
        }
    }
}

fn main() {
    let mut failures = Vec::new();
    let paths = doc_paths();
    for path in &paths {
        check_file(path, &mut failures);
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("doc_check: FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "doc_check: OK ({} files; flags vs USAGE, table tokens vs obs::schema, \
         schema versions vs code)",
        paths.len()
    );
}
