//! Exp#6 (Figure 13): search convergence under different maximum hop
//! lengths (`MaxHops` ∈ {1, 3, 7, 11}).
//!
//! The paper's finding: MaxHops = 1 can get stuck at a sub-optimal
//! configuration (it cannot express rebalancing sequences), while very
//! large MaxHops spends too long per iteration under a fixed time budget;
//! 7 is a good middle ground.

use aceso_bench::harness::{aceso_opts_for, full_scale, write_csv, ExpEnv};
use aceso_core::SearchOptions;
use aceso_model::zoo::{gpt3, wide_resnet, Gpt3Size, WideResnetSize};
use aceso_model::ModelGraph;
use aceso_util::table::Table;

fn main() {
    // Panels: GPT, Wide-ResNet with 8 stages, Wide-ResNet with 9 stages
    // (the paper's (c)/(d) panels fix the stage count).
    let panels: Vec<(&str, ModelGraph, usize, Option<Vec<usize>>)> = if full_scale() {
        vec![
            ("gpt3-13b", gpt3(Gpt3Size::S13b), 32, None),
            (
                "wresnet-13b/8st",
                wide_resnet(WideResnetSize::S13b),
                32,
                Some(vec![8]),
            ),
            (
                "wresnet-13b/9st",
                wide_resnet(WideResnetSize::S13b),
                32,
                Some(vec![9]),
            ),
        ]
    } else {
        vec![
            ("gpt3-2.6b", gpt3(Gpt3Size::S2_6b), 8, None),
            (
                "wresnet-2b/4st",
                wide_resnet(WideResnetSize::S2b),
                4,
                Some(vec![4]),
            ),
            (
                "wresnet-2b/3st",
                wide_resnet(WideResnetSize::S2b),
                4,
                Some(vec![3]),
            ),
        ]
    };
    let hop_values = [1usize, 3, 7, 11];

    let mut summary = Table::new(
        "Figure 13: best estimated iteration time (s) by MaxHops",
        &["panel", "hops=1", "hops=3", "hops=7", "hops=11"],
    );
    let mut csv = Table::new("", &["panel", "max_hops", "elapsed_s", "best_score"]);
    for (label, model, gpus, stage_counts) in panels {
        eprintln!("== panel {label} ==");
        let env = ExpEnv::new(model, gpus);
        let mut cells = vec![label.to_string()];
        for hops in hop_values {
            let opts = SearchOptions {
                max_hops: hops,
                stage_counts: stage_counts.clone(),
                ..aceso_opts_for(full_scale(), env.model.len())
            };
            let r = env.run_aceso(opts).expect("search runs");
            cells.push(format!("{:.2}", r.top_configs[0].score));
            for tr in &r.traces {
                for p in &tr.convergence {
                    csv.row(&[
                        label.to_string(),
                        hops.to_string(),
                        format!("{:.2}", p.elapsed),
                        format!("{:.4}", p.best_score),
                    ]);
                }
            }
        }
        summary.row(&cells);
    }
    print!("{}", summary.render());
    println!(
        "\nShape check: MaxHops=1 trails the rest on at least one panel, and\n\
         a moderate MaxHops (7) is never meaningfully worse than 11 under\n\
         the same time budget — the paper's Fig. 13 trade-off."
    );
    write_csv("exp6_fig13_summary.csv", &summary);
    write_csv("exp6_fig13_curves.csv", &csv);
}
