//! Exp#2 (Figure 8): configuration search cost, Aceso vs Alpa.
//!
//! Costs were measured during `exp1` (the artifact's E2 step likewise just
//! summarises E1's measurements); run `exp1` first. The paper's claim C2:
//! Aceso needs less than 5% of Alpa's search time in every case.

use aceso_bench::harness::{load_exp1, write_csv};
use aceso_util::table::Table;

fn main() {
    let Some(rows) = load_exp1() else {
        eprintln!("results/exp1.json not found — run `cargo run --release -p aceso-bench --bin exp1` first");
        std::process::exit(1);
    };
    let mut t = Table::new(
        "Figure 8: search cost (seconds; Alpa includes compile+profile)",
        &["model", "gpus", "aceso (s)", "alpa (s)", "aceso/alpa"],
    );
    let mut worst_ratio = 0.0f64;
    let mut keys: Vec<(String, usize)> = rows.iter().map(|r| (r.model.clone(), r.gpus)).collect();
    keys.dedup();
    for (model, gpus) in keys {
        let aceso = rows
            .iter()
            .find(|r| r.model == model && r.gpus == gpus && r.system == "aceso");
        let alpa = rows
            .iter()
            .find(|r| r.model == model && r.gpus == gpus && r.system == "alpa");
        let (Some(a), Some(al)) = (aceso, alpa) else {
            continue;
        };
        if gpus == 1 {
            // The 1-GPU setting shares one Alpa-found config (§5.1).
            continue;
        }
        let ratio = a.search_modeled / al.search_modeled;
        worst_ratio = worst_ratio.max(ratio);
        t.row(&[
            model.clone(),
            gpus.to_string(),
            format!("{:.1}", a.search_modeled),
            format!("{:.1}", al.search_modeled),
            format!("{:.3}", ratio),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nWorst-case Aceso/Alpa cost ratio: {:.3} (paper claim C2: < 0.05 in all cases — {})",
        worst_ratio,
        if worst_ratio < 0.05 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    write_csv("exp2_fig8.csv", &t);
}
