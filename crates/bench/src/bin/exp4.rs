//! Exp#4 (Figure 10): exploration efficiency — Aceso vs a pruned pure-DP
//! search on GPT-3 2.6B (8 GPUs) and 6.7B (16 GPUs).
//!
//! The paper reports the DP exploring 10⁷ / 4.3·10⁷ configurations while
//! Aceso explores ~1% of that, finding equal or slightly better configs
//! when executed.

use aceso_baselines::{DpOptions, DpSearch};
use aceso_bench::harness::{aceso_opts_for, full_scale, write_csv, ExpEnv};
use aceso_model::zoo::{gpt3, Gpt3Size};
use aceso_util::table::Table;

fn main() {
    let settings: Vec<(Gpt3Size, usize)> = if full_scale() {
        vec![(Gpt3Size::S2_6b, 8), (Gpt3Size::S6_7b, 16)]
    } else {
        vec![(Gpt3Size::S2_6b, 8)]
    };
    let mut t = Table::new(
        "Figure 10: explored configurations and executed performance",
        &[
            "model",
            "dp explored",
            "aceso explored",
            "ratio",
            "dp tput (samples/s)",
            "aceso tput",
        ],
    );
    for (size, gpus) in settings {
        eprintln!("== {} on {gpus} GPUs ==", size.name());
        let env = ExpEnv::new(gpt3(size), gpus);
        let dp = DpSearch::new(
            &env.model,
            &env.cluster,
            &env.db,
            DpOptions {
                max_microbatch: if full_scale() { 64 } else { 16 },
                ..DpOptions::default()
            },
        )
        .run()
        .expect("dp finds a configuration");
        eprintln!(
            "   dp explored {} configs in {:?}",
            dp.explored, dp.wall_time
        );
        let aceso = env
            .run_aceso(aceso_opts_for(full_scale(), env.model.len()))
            .expect("aceso runs");
        let dp_tput = env.execute(&dp.config).throughput;
        let aceso_tput = env.execute(&aceso.best_config).throughput;
        t.row(&[
            size.name().to_string(),
            dp.explored.to_string(),
            aceso.explored.to_string(),
            format!("{:.4}", aceso.explored as f64 / dp.explored as f64),
            format!("{:.2}", dp_tput),
            format!("{:.2}", aceso_tput),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nShape check: Aceso explores a small fraction of the DP's space\n\
         while matching (or beating) its executed throughput — Fig. 10's\n\
         result. The paper's ratio is ~1%."
    );
    write_csv("exp4_fig10.csv", &t);
}
