//! Shared experiment harness.
//!
//! Every `exp*` binary uses this module to build (model, cluster, profile)
//! environments, run the three searchers with consistent budgets, persist
//! results under `results/`, and render the rows/series the paper reports.
//!
//! Budgets scale with the `ACESO_FULL` environment variable: unset runs a
//! quick pass (minutes, same qualitative shapes), `ACESO_FULL=1` runs
//! paper-scale budgets (the 200 s search budget of §5.1).

use aceso_baselines::{
    AlpaError, AlpaOptions, AlpaSearch, BaselineResult, MegatronOptions, MegatronSearch,
};
use aceso_cluster::ClusterSpec;
use aceso_config::ParallelConfig;
use aceso_core::{AcesoSearch, SearchOptions, SearchResult};
use aceso_model::ModelGraph;
use aceso_obs::ObsReport;
use aceso_profile::ProfileDb;
use aceso_runtime::{SimReport, Simulator};
use aceso_util::json::{obj, FromJson, JsonError, ToJson, Value};
use std::path::PathBuf;
use std::time::Duration;

/// Whether paper-scale budgets were requested.
pub fn full_scale() -> bool {
    std::env::var("ACESO_FULL").is_ok_and(|v| v == "1")
}

/// One prepared experiment environment.
pub struct ExpEnv {
    /// The model under test.
    pub model: ModelGraph,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Profiled database (built once per environment).
    pub db: ProfileDb,
}

impl ExpEnv {
    /// Builds the environment (profiles the model on the cluster).
    pub fn new(model: ModelGraph, gpus: usize) -> Self {
        let cluster = ClusterSpec::v100_gpus(gpus);
        let db = ProfileDb::build(&model, &cluster);
        Self { model, cluster, db }
    }

    /// Executes a configuration on the runtime simulator.
    pub fn execute(&self, config: &ParallelConfig) -> SimReport {
        Simulator::with_defaults(&self.model, &self.cluster, &self.db)
            .execute(config)
            .expect("searched configs are valid")
    }

    /// Runs the Aceso search with the scale-appropriate budget.
    pub fn run_aceso(&self, opts: SearchOptions) -> Result<SearchResult, aceso_core::SearchError> {
        AcesoSearch::new(&self.model, &self.cluster, &self.db, opts).run()
    }

    /// Runs the Aceso search with observability on, returning the metric
    /// report alongside the result.
    pub fn run_aceso_observed(
        &self,
        opts: SearchOptions,
    ) -> Result<(SearchResult, ObsReport), aceso_core::SearchError> {
        AcesoSearch::new(&self.model, &self.cluster, &self.db, opts).run_observed(true)
    }

    /// Runs the Megatron-LM grid search.
    pub fn run_megatron(&self) -> Option<BaselineResult> {
        MegatronSearch::new(
            &self.model,
            &self.cluster,
            &self.db,
            MegatronOptions::default(),
        )
        .run()
    }

    /// Runs the Alpa-like search.
    pub fn run_alpa(&self) -> Result<BaselineResult, AlpaError> {
        AlpaSearch::new(
            &self.model,
            &self.cluster,
            &self.db,
            alpa_opts(full_scale()),
        )
        .run()
    }
}

/// Default Aceso budget for the current scale.
pub fn aceso_opts(full: bool) -> SearchOptions {
    aceso_opts_for(full, 0)
}

/// Budget scaled to the model's operator count: evaluation cost grows
/// linearly with ops, so very deep models get proportionally more wall
/// time in quick mode (full mode always uses the paper's 200 s).
pub fn aceso_opts_for(full: bool, ops: usize) -> SearchOptions {
    if full {
        SearchOptions {
            max_iterations: 10_000,
            time_budget: Some(Duration::from_secs(200)),
            ..SearchOptions::default()
        }
    } else {
        let secs = 12 + (ops / 40) as u64;
        SearchOptions {
            max_iterations: 200,
            time_budget: Some(Duration::from_secs(secs)),
            ..SearchOptions::default()
        }
    }
}

/// Default Alpa grid for the current scale.
pub fn alpa_opts(full: bool) -> AlpaOptions {
    if full {
        AlpaOptions::default()
    } else {
        AlpaOptions {
            layer_group_counts: vec![4, 8],
            max_microbatch: 128,
            ..AlpaOptions::default()
        }
    }
}

/// The results directory (`results/` beside the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("results dir creatable");
    dir
}

/// Writes a CSV artifact into `results/`.
pub fn write_csv(name: &str, table: &aceso_util::table::Table) {
    let path = results_dir().join(name);
    std::fs::write(&path, table.to_csv()).expect("csv writes");
    println!("[saved {}]", path.display());
}

/// Writes the `BENCH_search.json` perf-trajectory snapshot at the
/// workspace root: the search's headline numbers plus the full
/// observability metric snapshot (`docs/OBSERVABILITY.md` schema). One
/// file per checkout, overwritten on each run, so the trajectory is the
/// file's git history. `search_threads` records the resolved frontier
/// worker count the run used (`SearchOptions::resolved_threads`), so a
/// snapshot taken on a multicore box is never mistaken for a serial
/// baseline (field reference in `docs/BENCHMARKS.md`).
pub fn write_bench_search(
    result: &SearchResult,
    report: &ObsReport,
    search_threads: usize,
) -> PathBuf {
    let path = bench_search_path();
    // Sections owned by other harnesses survive the overwrite: the
    // `serve_fleet` fan-in numbers come from `serve_bench fleet` and the
    // `serve_restart` store figures from `serve_bench restart`, not from
    // the search run this function snapshots.
    let carried: Vec<(String, Value)> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| Value::parse(&t).ok())
        .map(|doc| {
            ["serve_fleet", "serve_restart"]
                .iter()
                .filter_map(|k| doc.field(k).ok().map(|v| (k.to_string(), v.clone())))
                .collect()
        })
        .unwrap_or_default();
    let mut doc = obj([
        ("best_time", Value::Float(result.best_time)),
        ("explored", Value::UInt(result.explored as u64)),
        ("search_threads", Value::UInt(search_threads as u64)),
        (
            "wall_time_secs",
            Value::Float(result.wall_time.as_secs_f64()),
        ),
        (
            "configs_per_sec",
            Value::Float(result.explored as f64 / result.wall_time.as_secs_f64().max(1e-9)),
        ),
        (
            "metrics",
            Value::parse(&report.metrics_json()).expect("own snapshot parses"),
        ),
    ]);
    if let Value::Object(fields) = &mut doc {
        fields.extend(carried);
    }
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("BENCH_search.json writes");
    println!("[saved {}]", path.display());
    path
}

/// The workspace-root `BENCH_search.json` path.
pub fn bench_search_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_search.json")
}

/// Replaces one named top-level section of a bench snapshot in place,
/// preserving every other field (and creating the file with only that
/// section when it does not exist yet). `serve_bench fleet` uses this to
/// record its fan-in percentiles beside the search trajectory that
/// [`write_bench_search`] owns.
pub fn merge_bench_section(path: &std::path::Path, key: &str, section: Value) {
    let mut fields = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| Value::parse(&t).ok())
        .and_then(|doc| match doc {
            Value::Object(fields) => Some(fields),
            _ => None,
        })
        .unwrap_or_default();
    fields.retain(|(k, _)| k != key);
    fields.push((key.to_string(), section));
    let mut text = Value::Object(fields).to_string_pretty();
    text.push('\n');
    std::fs::write(path, text).expect("bench snapshot writes");
    println!("[saved {}]", path.display());
}

/// One Exp#1 measurement row, persisted for Exp#2/8/9 and Tables 3–5.
#[derive(Debug, Clone)]
pub struct Exp1Row {
    /// Model family (`gpt3`, `t5`, `wresnet`).
    pub family: String,
    /// Size label, e.g. `gpt3-2.6b`.
    pub model: String,
    /// GPUs used.
    pub gpus: usize,
    /// System name (`aceso`, `megatron`, `alpa`).
    pub system: String,
    /// Simulated ("actual") iteration time, seconds.
    pub iteration_time: f64,
    /// Samples/second on the runtime simulator.
    pub throughput: f64,
    /// Effective TFLOPS per GPU.
    pub tflops: f64,
    /// Measured search wall time, seconds.
    pub search_wall: f64,
    /// Modelled search cost (adds compile/profile overheads), seconds.
    pub search_modeled: f64,
    /// Configurations explored by the search.
    pub explored: usize,
    /// The best configuration found.
    pub config: ParallelConfig,
    /// Predicted iteration time from the performance model, seconds.
    pub predicted_time: f64,
    /// Predicted peak memory (bytes) and measured peak memory (bytes).
    pub predicted_mem: u64,
    /// Measured peak memory from the simulator, bytes.
    pub actual_mem: u64,
}

impl ToJson for Exp1Row {
    fn to_json_value(&self) -> Value {
        obj([
            ("family", Value::Str(self.family.clone())),
            ("model", Value::Str(self.model.clone())),
            ("gpus", Value::UInt(self.gpus as u64)),
            ("system", Value::Str(self.system.clone())),
            ("iteration_time", Value::Float(self.iteration_time)),
            ("throughput", Value::Float(self.throughput)),
            ("tflops", Value::Float(self.tflops)),
            ("search_wall", Value::Float(self.search_wall)),
            ("search_modeled", Value::Float(self.search_modeled)),
            ("explored", Value::UInt(self.explored as u64)),
            ("config", self.config.to_json_value()),
            ("predicted_time", Value::Float(self.predicted_time)),
            ("predicted_mem", Value::UInt(self.predicted_mem)),
            ("actual_mem", Value::UInt(self.actual_mem)),
        ])
    }
}

impl FromJson for Exp1Row {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            family: v.field("family")?.as_str()?.to_string(),
            model: v.field("model")?.as_str()?.to_string(),
            gpus: v.field("gpus")?.as_usize()?,
            system: v.field("system")?.as_str()?.to_string(),
            iteration_time: v.field("iteration_time")?.as_f64()?,
            throughput: v.field("throughput")?.as_f64()?,
            tflops: v.field("tflops")?.as_f64()?,
            search_wall: v.field("search_wall")?.as_f64()?,
            search_modeled: v.field("search_modeled")?.as_f64()?,
            explored: v.field("explored")?.as_usize()?,
            config: ParallelConfig::from_json_value(v.field("config")?)?,
            predicted_time: v.field("predicted_time")?.as_f64()?,
            predicted_mem: v.field("predicted_mem")?.as_u64()?,
            actual_mem: v.field("actual_mem")?.as_u64()?,
        })
    }
}

/// Persists Exp#1 rows as JSON.
pub fn save_exp1(rows: &[Exp1Row]) {
    let path = results_dir().join("exp1.json");
    let doc = Value::Array(rows.iter().map(ToJson::to_json_value).collect());
    std::fs::write(&path, doc.to_string_pretty()).expect("exp1.json writes");
    println!("[saved {}]", path.display());
}

/// Loads Exp#1 rows, if the experiment ran.
pub fn load_exp1() -> Option<Vec<Exp1Row>> {
    let path = results_dir().join("exp1.json");
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Value::parse(&text).ok()?;
    doc.as_array()
        .ok()?
        .iter()
        .map(Exp1Row::from_json_value)
        .collect::<Result<Vec<_>, _>>()
        .ok()
}

/// The Exp#1 (model size, GPU count) ladder from §5.1.
pub const SIZE_GPU_LADDER: [usize; 5] = [1, 4, 8, 16, 32];

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;

    #[test]
    fn env_builds_and_searches() {
        let env = ExpEnv::new(gpt3_custom("t", 2, 256, 4, 128, 1000, 16), 2);
        let r = env
            .run_aceso(SearchOptions {
                max_iterations: 4,
                parallel: false,
                ..SearchOptions::default()
            })
            .expect("search runs");
        let report = env.execute(&r.best_config);
        assert!(report.iteration_time > 0.0);
    }

    #[test]
    fn budgets_differ_by_scale() {
        assert!(aceso_opts(true).max_iterations > aceso_opts(false).max_iterations);
        assert!(alpa_opts(true).max_microbatch >= alpa_opts(false).max_microbatch);
    }

    #[test]
    fn results_roundtrip() {
        let dir = results_dir();
        assert!(dir.exists());
    }

    #[test]
    fn merge_bench_section_preserves_unrelated_fields() {
        use aceso_util::json::obj;
        let path = std::env::temp_dir().join(format!("aceso-merge-{}.json", std::process::id()));
        std::fs::write(
            &path,
            "{\n  \"best_time\": 1.5,\n  \"serve_fleet\": {\"clients\": 1}\n}\n",
        )
        .unwrap();
        merge_bench_section(&path, "serve_fleet", obj([("clients", Value::UInt(512))]));
        let doc = Value::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // The unrelated field survives; the section is replaced, not
        // appended beside its stale copy.
        assert_eq!(doc.field("best_time").unwrap().as_f64().unwrap(), 1.5);
        let fleet = doc.field("serve_fleet").unwrap();
        assert_eq!(fleet.field("clients").unwrap().as_u64().unwrap(), 512);
        let Value::Object(fields) = &doc else {
            panic!("object doc")
        };
        assert_eq!(fields.iter().filter(|(k, _)| k == "serve_fleet").count(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
