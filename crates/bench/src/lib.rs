//! Experiment harness shared code (see the `bin/` targets for each
//! table and figure of the paper).

pub mod harness;
