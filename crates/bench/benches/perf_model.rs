//! Criterion micro-benchmarks of the performance model — the search's
//! inner loop. The paper's search evaluates hundreds of thousands of
//! configurations in its 200 s budget, so evaluation must stay in the
//! tens-of-microseconds range.

use aceso_cluster::ClusterSpec;
use aceso_config::balanced_init;
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_model_evaluate");
    for (label, model, gpus) in [
        (
            "gpt3-small-68ops",
            aceso_model::zoo::gpt3_custom("b1", 8, 1024, 16, 1024, 32000, 128),
            4usize,
        ),
        (
            "gpt3-13b-324ops",
            aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S13b),
            32,
        ),
        ("deepnet-256l-2052ops", aceso_model::zoo::deepnet(256), 8),
    ] {
        let cluster = ClusterSpec::v100_gpus(gpus);
        let db = ProfileDb::build(&model, &cluster);
        let pm = PerfModel::new(&model, &cluster, &db);
        let cfg = balanced_init(&model, &cluster, gpus.min(4)).expect("init");
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| black_box(pm.evaluate_unchecked(black_box(cfg))));
        });
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let model = aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S13b);
    let cluster = ClusterSpec::v100_gpus(32);
    let cfg = balanced_init(&model, &cluster, 8).expect("init");
    c.bench_function("semantic_hash_324ops", |b| {
        b.iter(|| black_box(black_box(&cfg).semantic_hash()));
    });
}

criterion_group!(benches, bench_evaluate, bench_hashing);
criterion_main!(benches);
