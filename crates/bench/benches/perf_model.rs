//! Micro-benchmarks of the performance model — the search's inner loop.
//! The paper's search evaluates hundreds of thousands of configurations in
//! its 200 s budget, so evaluation must stay in the tens-of-microseconds
//! range.
//!
//! Plain `harness = false` binaries: each case is warmed up, then timed
//! over a fixed iteration count, reporting mean ns/iter.

use aceso_cluster::ClusterSpec;
use aceso_config::balanced_init;
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use std::hint::black_box;
use std::time::Instant;

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters.div_ceil(10) {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_nanos() / u128::from(iters.max(1));
    println!("{name:<40} {per_iter:>12} ns/iter ({iters} iters)");
}

fn main() {
    for (label, model, gpus) in [
        (
            "evaluate/gpt3-small-68ops",
            aceso_model::zoo::gpt3_custom("b1", 8, 1024, 16, 1024, 32000, 128),
            4usize,
        ),
        (
            "evaluate/gpt3-13b-324ops",
            aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S13b),
            32,
        ),
        (
            "evaluate/deepnet-256l-2052ops",
            aceso_model::zoo::deepnet(256),
            8,
        ),
    ] {
        let cluster = ClusterSpec::v100_gpus(gpus);
        let db = ProfileDb::build(&model, &cluster);
        let pm = PerfModel::new(&model, &cluster, &db);
        let cfg = balanced_init(&model, &cluster, gpus.min(4)).expect("init");
        bench(label, 200, || pm.evaluate_unchecked(black_box(&cfg)));
    }

    let model = aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S13b);
    let cluster = ClusterSpec::v100_gpus(32);
    let cfg = balanced_init(&model, &cluster, 8).expect("init");
    bench("semantic_hash_324ops", 10_000, || {
        black_box(&cfg).semantic_hash()
    });
}
