//! Benchmarks of search building blocks: candidate generation, bottleneck
//! ranking, the fine-tuning pass, and a short end-to-end search.
//!
//! Plain `harness = false` binaries: each case is warmed up, then timed
//! over a fixed iteration count, reporting mean ns/iter.

use aceso_cluster::ClusterSpec;
use aceso_config::balanced_init;
use aceso_core::{finetune, primitives, ranked_bottlenecks, AcesoSearch, SearchOptions};
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use std::hint::black_box;
use std::time::Instant;

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters.div_ceil(10) {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_nanos() / u128::from(iters.max(1));
    println!("{name:<40} {per_iter:>12} ns/iter ({iters} iters)");
}

fn setup() -> (aceso_model::ModelGraph, ClusterSpec) {
    (
        aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S2_6b),
        ClusterSpec::v100_gpus(8),
    )
}

fn main() {
    let (model, cluster) = setup();
    let db = ProfileDb::build(&model, &cluster);
    let pm = PerfModel::new(&model, &cluster, &db);
    let cfg = balanced_init(&model, &cluster, 4).expect("init");
    let est = pm.evaluate_unchecked(&cfg);

    bench("generate_all_primitives_2.6b", 50, || {
        let mut n = 0usize;
        for prim in primitives::Primitive::ALL {
            for res in primitives::Resource::ALL {
                n += primitives::generate(&pm, &cfg, &est, prim, 0, res).len();
            }
        }
        n
    });

    bench("ranked_bottlenecks_4stages", 10_000, || {
        ranked_bottlenecks(black_box(&est))
    });

    bench("fine_tune_pass_2.6b", 20, || {
        finetune::fine_tune(&pm, cfg.clone())
    });

    let model = aceso_model::zoo::gpt3_custom("b", 8, 1024, 16, 1024, 32000, 128);
    let cluster = ClusterSpec::v100_gpus(4);
    let db = ProfileDb::build(&model, &cluster);
    bench("search_8_iterations_small_gpt", 5, || {
        AcesoSearch::new(
            &model,
            &cluster,
            &db,
            SearchOptions {
                max_iterations: 8,
                parallel: false,
                stage_counts: Some(vec![2]),
                ..SearchOptions::default()
            },
        )
        .run()
        .expect("runs")
        .explored
    });
}
