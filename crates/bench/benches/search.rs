//! Criterion benchmarks of search building blocks: candidate generation,
//! one multi-hop iteration, and the fine-tuning pass.

use aceso_cluster::ClusterSpec;
use aceso_config::balanced_init;
use aceso_core::{finetune, primitives, ranked_bottlenecks, AcesoSearch, SearchOptions};
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup() -> (aceso_model::ModelGraph, ClusterSpec) {
    (
        aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S2_6b),
        ClusterSpec::v100_gpus(8),
    )
}

fn bench_candidate_generation(c: &mut Criterion) {
    let (model, cluster) = setup();
    let db = ProfileDb::build(&model, &cluster);
    let pm = PerfModel::new(&model, &cluster, &db);
    let cfg = balanced_init(&model, &cluster, 4).expect("init");
    let est = pm.evaluate_unchecked(&cfg);
    c.bench_function("generate_all_primitives_2.6b", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for prim in primitives::Primitive::ALL {
                for res in primitives::Resource::ALL {
                    n += primitives::generate(&pm, &cfg, &est, prim, 0, res).len();
                }
            }
            black_box(n)
        });
    });
}

fn bench_bottleneck_ranking(c: &mut Criterion) {
    let (model, cluster) = setup();
    let db = ProfileDb::build(&model, &cluster);
    let pm = PerfModel::new(&model, &cluster, &db);
    let cfg = balanced_init(&model, &cluster, 4).expect("init");
    let est = pm.evaluate_unchecked(&cfg);
    c.bench_function("ranked_bottlenecks_4stages", |b| {
        b.iter(|| black_box(ranked_bottlenecks(black_box(&est))));
    });
}

fn bench_fine_tune(c: &mut Criterion) {
    let (model, cluster) = setup();
    let db = ProfileDb::build(&model, &cluster);
    let pm = PerfModel::new(&model, &cluster, &db);
    let cfg = balanced_init(&model, &cluster, 4).expect("init");
    c.bench_function("fine_tune_pass_2.6b", |b| {
        b.iter(|| black_box(finetune::fine_tune(&pm, cfg.clone())));
    });
}

fn bench_short_search(c: &mut Criterion) {
    let model = aceso_model::zoo::gpt3_custom("b", 8, 1024, 16, 1024, 32000, 128);
    let cluster = ClusterSpec::v100_gpus(4);
    let db = ProfileDb::build(&model, &cluster);
    let mut group = c.benchmark_group("search_iterations");
    group.sample_size(10);
    group.bench_function("8_iterations_small_gpt", |b| {
        b.iter(|| {
            let r = AcesoSearch::new(
                &model,
                &cluster,
                &db,
                SearchOptions {
                    max_iterations: 8,
                    parallel: false,
                    stage_counts: Some(vec![2]),
                    ..SearchOptions::default()
                },
            )
            .run()
            .expect("runs");
            black_box(r.explored)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_candidate_generation,
    bench_bottleneck_ranking,
    bench_fine_tune,
    bench_short_search
);
criterion_main!(benches);
