//! Benchmarks of the runtime simulator and profile database.
//!
//! Plain `harness = false` binaries: each case is warmed up, then timed
//! over a fixed iteration count, reporting mean ns/iter.

use aceso_cluster::ClusterSpec;
use aceso_config::balanced_init;
use aceso_profile::ProfileDb;
use aceso_runtime::Simulator;
use std::hint::black_box;
use std::time::Instant;

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters.div_ceil(10) {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_nanos() / u128::from(iters.max(1));
    println!("{name:<40} {per_iter:>12} ns/iter ({iters} iters)");
}

fn main() {
    for (label, model, gpus, stages) in [
        (
            "execute/gpt3-2.6b-8gpu",
            aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S2_6b),
            8usize,
            4usize,
        ),
        (
            "execute/wresnet-2b-4gpu",
            aceso_model::zoo::wide_resnet(aceso_model::zoo::WideResnetSize::S2b),
            4,
            2,
        ),
    ] {
        let cluster = ClusterSpec::v100_gpus(gpus);
        let db = ProfileDb::build(&model, &cluster);
        let cfg = balanced_init(&model, &cluster, stages).expect("init");
        let sim = Simulator::with_defaults(&model, &cluster, &db);
        bench(label, 100, || sim.execute(black_box(&cfg)).expect("runs"));
    }

    let model = aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S13b);
    let cluster = ClusterSpec::v100_gpus(32);
    bench("profile_db_build_13b", 10, || {
        ProfileDb::build(&model, &cluster).len()
    });

    let db = ProfileDb::build(&model, &cluster);
    let op = &model.ops[10];
    let sig = ProfileDb::op_signature(op);
    bench("profile_lookup_hit", 100_000, || {
        db.op_fwd_time_sig(sig, op, 2, 0, 4)
    });
}
