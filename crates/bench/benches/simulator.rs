//! Criterion benchmarks of the runtime simulator and profile database.

use aceso_cluster::ClusterSpec;
use aceso_config::balanced_init;
use aceso_profile::ProfileDb;
use aceso_runtime::Simulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_execute");
    for (label, model, gpus, stages) in [
        (
            "gpt3-2.6b-8gpu",
            aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S2_6b),
            8usize,
            4usize,
        ),
        (
            "wresnet-2b-4gpu",
            aceso_model::zoo::wide_resnet(aceso_model::zoo::WideResnetSize::S2b),
            4,
            2,
        ),
    ] {
        let cluster = ClusterSpec::v100_gpus(gpus);
        let db = ProfileDb::build(&model, &cluster);
        let cfg = balanced_init(&model, &cluster, stages).expect("init");
        let sim = Simulator::with_defaults(&model, &cluster, &db);
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| black_box(sim.execute(black_box(cfg)).expect("runs")));
        });
    }
    group.finish();
}

fn bench_profile_build(c: &mut Criterion) {
    let model = aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S13b);
    let cluster = ClusterSpec::v100_gpus(32);
    c.bench_function("profile_db_build_13b", |b| {
        b.iter(|| black_box(ProfileDb::build(&model, &cluster).len()));
    });
}

fn bench_profile_lookup(c: &mut Criterion) {
    let model = aceso_model::zoo::gpt3(aceso_model::zoo::Gpt3Size::S13b);
    let cluster = ClusterSpec::v100_gpus(32);
    let db = ProfileDb::build(&model, &cluster);
    let op = &model.ops[10];
    let sig = ProfileDb::op_signature(op);
    c.bench_function("profile_lookup_hit", |b| {
        b.iter(|| black_box(db.op_fwd_time_sig(sig, op, 2, 0, 4)));
    });
}

criterion_group!(
    benches,
    bench_execute,
    bench_profile_build,
    bench_profile_lookup
);
criterion_main!(benches);
