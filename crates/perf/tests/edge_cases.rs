//! Edge-case tests for the perf model's memoizable ingredients —
//! `stage_breakdown` and `boundary_p2p` — at the corners the incremental
//! evaluator's cache key must respect: single-stage pipelines (no
//! boundary term at all), pure dp=1 configurations (exactly zero
//! gradient sync), and tensor-parallel groups that span a node boundary.

use aceso_cluster::ClusterSpec;
use aceso_config::{balanced_init, OpParallel, ParallelConfig, StageConfig};
use aceso_model::{zoo::gpt3_custom, ModelGraph};
use aceso_perf::PerfModel;
use aceso_profile::ProfileDb;

fn model() -> ModelGraph {
    gpt3_custom("edge", 4, 512, 8, 256, 8192, 64)
}

fn uniform(n: usize, para: OpParallel, microbatch: usize) -> ParallelConfig {
    ParallelConfig {
        stages: vec![StageConfig::uniform(0, n, para)],
        microbatch,
    }
}

/// A single-stage pipeline has no pipeline boundary: the assembled stage
/// communication must equal the raw breakdown bit-for-bit — any
/// difference means a phantom `boundary_p2p` term leaked in.
#[test]
fn single_stage_pipeline_has_no_boundary_term() {
    let m = model();
    let c = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&m, &c);
    let pm = PerfModel::new(&m, &c, &db);
    let cfg = balanced_init(&m, &c, 1).expect("init");

    let raw = pm.stage_breakdown(&cfg, 0);
    let est = pm.evaluate(&cfg).expect("valid");
    assert_eq!(est.stages.len(), 1);
    assert_eq!(est.slowest_stage, 0);
    assert_eq!(est.stages[0].in_flight, 1);
    assert_eq!(est.stages[0].comm_fwd.to_bits(), raw.comm_fwd.to_bits());
    assert_eq!(est.stages[0].comm_bwd.to_bits(), raw.comm_bwd.to_bits());

    // Contrast: with two stages a forward boundary is charged on stage 0.
    let cfg2 = balanced_init(&m, &c, 2).expect("init");
    let raw2 = pm.stage_breakdown(&cfg2, 0);
    let est2 = pm.evaluate(&cfg2).expect("valid");
    assert!(est2.stages[0].comm_fwd > raw2.comm_fwd);
}

/// With dp = 1 on every op there is no gradient to synchronise: `dp_sync`
/// must be exactly 0.0 (not merely small) on every stage, both in the
/// raw breakdown and in the assembled estimate.
#[test]
fn dp1_everywhere_has_exactly_zero_dp_sync() {
    let m = model();
    let c = ClusterSpec::v100(1, 4);
    let db = ProfileDb::build(&m, &c);
    let pm = PerfModel::new(&m, &c, &db);

    // Four single-GPU stages: tp = dp = 1 everywhere by construction.
    let cfg = balanced_init(&m, &c, 4).expect("init");
    for s in &cfg.stages {
        for o in &s.ops {
            assert_eq!((o.tp, o.dp), (1, 1));
        }
    }
    let est = pm.evaluate(&cfg).expect("valid");
    for (i, s) in est.stages.iter().enumerate() {
        assert_eq!(
            pm.stage_breakdown(&cfg, i).dp_sync.to_bits(),
            0f64.to_bits()
        );
        assert_eq!(s.dp_sync.to_bits(), 0f64.to_bits());
    }

    // Contrast: a data-parallel stage pays a strictly positive sync.
    let dp4 = uniform(m.len(), OpParallel::data_parallel(4), 4);
    let dp_est = pm.evaluate(&dp4).expect("valid");
    assert!(dp_est.stages[0].dp_sync > 0.0);
}

/// The same tp=4 configuration is strictly more expensive when its
/// tensor-parallel group spans a node boundary (2 nodes × 2 GPUs) than
/// when it fits inside one node (1 × 4): all-reduces cross the slower
/// inter-node link.
#[test]
fn tp_spanning_node_boundary_costs_more() {
    let m = model();
    let tp4 = uniform(
        m.len(),
        OpParallel {
            tp: 4,
            dp: 1,
            dim_index: 0,
            recompute: false,
            zero: false,
        },
        4,
    );

    let intra = ClusterSpec::v100(1, 4);
    let inter = ClusterSpec::v100(2, 2);
    let db_intra = ProfileDb::build(&m, &intra);
    let db_inter = ProfileDb::build(&m, &inter);
    let pm_intra = PerfModel::new(&m, &intra, &db_intra);
    let pm_inter = PerfModel::new(&m, &inter, &db_inter);

    let a = pm_intra.stage_breakdown(&tp4, 0);
    let b = pm_inter.stage_breakdown(&tp4, 0);
    assert!(
        b.comm_fwd > a.comm_fwd,
        "cross-node tp comm {} must exceed intra-node {}",
        b.comm_fwd,
        a.comm_fwd
    );
    // Compute is topology-independent.
    assert_eq!(a.comp_fwd.to_bits(), b.comp_fwd.to_bits());
}

/// `boundary_p2p` across a node boundary is dearer than the same
/// transfer inside a node, and its payload shrinks with the producing
/// op's data-parallel degree (each replica ships its own slice).
#[test]
fn boundary_p2p_cost_tracks_topology_and_dp() {
    let m = model();
    let intra = ClusterSpec::v100(1, 4);
    let inter = ClusterSpec::v100(2, 2);
    let db_intra = ProfileDb::build(&m, &intra);
    let db_inter = ProfileDb::build(&m, &inter);
    let pm_intra = PerfModel::new(&m, &intra, &db_intra);
    let pm_inter = PerfModel::new(&m, &inter, &db_inter);

    let cfg = balanced_init(&m, &intra, 2).expect("init");
    // Device 1 -> 2 stays in-node on 1×4 but crosses nodes on 2×2.
    let in_node = pm_intra.boundary_p2p(&cfg, 0, 1, 2);
    let cross_node = pm_inter.boundary_p2p(&cfg, 0, 1, 2);
    assert!(in_node > 0.0);
    assert!(
        cross_node > in_node,
        "cross-node p2p {cross_node} must exceed in-node {in_node}"
    );

    // Doubling the last op's dp halves the per-replica payload.
    let mut dp1 = cfg.clone();
    for o in &mut dp1.stages[0].ops {
        o.tp = 2;
        o.dp = 1;
    }
    let mut dp2 = cfg.clone();
    for o in &mut dp2.stages[0].ops {
        o.tp = 1;
        o.dp = 2;
    }
    let full = pm_intra.boundary_p2p(&dp1, 0, 1, 2);
    let halved = pm_intra.boundary_p2p(&dp2, 0, 1, 2);
    assert!(
        halved < full,
        "dp=2 boundary {halved} must undercut dp=1 {full}"
    );
}
