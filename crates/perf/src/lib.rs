//! The analytic performance model (paper §3.3).
//!
//! Given a [`aceso_config::ParallelConfig`], [`PerfModel::evaluate`]
//! predicts, per pipeline stage: compute and communication time per
//! microbatch, memory consumption (Eq. 1, including recomputation and the
//! deliberate reserved-memory overestimate), per-stage iteration time
//! (Eq. 2: warmup + steady + cooldown under 1F1B), and rolls them into the
//! configuration's iteration time, throughput and feasibility.
//!
//! The search consumes this as its only oracle: it never needs absolute
//! accuracy, only a faithful *ordering* of configurations and a resource
//! breakdown to identify bottlenecks — the same stance the paper takes.

#![deny(missing_docs)]

pub mod cached;
pub mod estimate;
pub mod grid;
pub mod model;
pub mod p2p;

pub use cached::{CachedEvaluator, EvalTrace, Evaluator, MemoEntry, TracingEvaluator};
pub use estimate::{ConfigEstimate, StageEstimate};
pub use grid::LatencyGrid;
pub use model::PerfModel;
pub use p2p::P2pMemo;
