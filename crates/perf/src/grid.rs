//! Structure-of-arrays latency grid: the hot-path replacement for
//! [`ProfileDb`] hash lookups.
//!
//! The profile database is a lock-guarded hash map; every per-op forward
//! time costs a `RwLock` read plus a hash probe. The performance model
//! queries the same small key space millions of times per search, so
//! [`LatencyGrid`] flattens it into one contiguous `Vec<f64>` indexed by
//! `[op-row][partition-dim][log2 tp][log2 batch]` at construction time.
//! Values are copied out of the database verbatim (the database is a memo
//! over a pure measurement function), so a grid hit is **bit-identical**
//! to the database lookup it replaces; keys outside the grid (non
//! power-of-two degrees, out-of-range batches) fall back to the database.

use aceso_cluster::ClusterSpec;
use aceso_model::ModelGraph;
use aceso_profile::ProfileDb;
use std::collections::HashMap;

/// Flattened per-operator forward-latency table.
///
/// Rows are deduplicated by profile signature, exactly like the database
/// prefill: a 40-layer GPT with identical layers contributes a handful of
/// rows, each shared by every operator index with that signature.
#[derive(Debug)]
pub struct LatencyGrid {
    /// Row index per global operator index (`model.ops` order).
    row_of: Vec<u32>,
    /// Partition-dimension slots per row (max over all operators).
    dims: usize,
    /// Power-of-two tensor-parallel levels: `tp = 1 << level`.
    tp_levels: usize,
    /// Power-of-two per-device batch levels: `batch = 1 << level`.
    batch_levels: usize,
    /// `rows × dims × tp_levels × batch_levels` latencies, `NaN` where the
    /// slot is outside the operator's profiled range.
    values: Vec<f64>,
}

impl LatencyGrid {
    /// Builds the grid for `model` on `cluster`, copying every in-range
    /// latency out of `db`. `sigs` are the precomputed per-op profile
    /// signatures (`model.ops` order).
    pub fn build(model: &ModelGraph, cluster: &ClusterSpec, db: &ProfileDb, sigs: &[u64]) -> Self {
        let max_tp = (cluster.total_gpus().max(1)) as u32;
        let max_batch = (model.global_batch.max(1)) as u64;
        let tp_levels = (max_tp.ilog2() + 1) as usize;
        let batch_levels = (max_batch.ilog2() + 1) as usize;
        let dims = model
            .ops
            .iter()
            .map(|o| o.partitions.len())
            .max()
            .unwrap_or(1)
            .max(1);

        let mut row_of = Vec::with_capacity(model.ops.len());
        let mut rows: HashMap<u64, u32> = HashMap::new();
        let mut values: Vec<f64> = Vec::new();
        for (g, op) in model.ops.iter().enumerate() {
            let sig = sigs[g];
            let row = *rows.entry(sig).or_insert_with(|| {
                let row = (values.len() / (dims * tp_levels * batch_levels)) as u32;
                for dim in 0..dims {
                    for tpl in 0..tp_levels {
                        let tp = 1u32 << tpl;
                        for bl in 0..batch_levels {
                            let batch = 1u64 << bl;
                            let in_range = dim < op.partitions.len() && tp <= op.tp_limit;
                            values.push(if in_range {
                                db.op_fwd_time_sig(sig, op, tp, dim, batch)
                            } else {
                                f64::NAN
                            });
                        }
                    }
                }
                row
            });
            row_of.push(row);
        }
        Self {
            row_of,
            dims,
            tp_levels,
            batch_levels,
            values,
        }
    }

    /// Forward latency of operator `g` at `(tp, dim, per_dev_batch)`, or
    /// `None` when the key falls outside the grid (caller falls back to
    /// the profile database, which returns the same value a grid slot
    /// would have held).
    #[inline]
    pub fn lookup(&self, g: usize, tp: u32, dim: usize, per_dev_batch: u64) -> Option<f64> {
        let batch = per_dev_batch.max(1);
        if !tp.is_power_of_two() || !batch.is_power_of_two() || dim >= self.dims {
            return None;
        }
        let tpl = tp.trailing_zeros() as usize;
        let bl = batch.trailing_zeros() as usize;
        if tpl >= self.tp_levels || bl >= self.batch_levels {
            return None;
        }
        let row = self.row_of[g] as usize;
        let idx = ((row * self.dims + dim) * self.tp_levels + tpl) * self.batch_levels + bl;
        let v = self.values[idx];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Number of populated (non-`NaN`) grid slots.
    pub fn populated(&self) -> usize {
        self.values.iter().filter(|v| !v.is_nan()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_model::zoo::gpt3_custom;

    fn setup() -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("g", 2, 256, 4, 128, 1000, 64),
            ClusterSpec::v100(1, 4),
        )
    }

    fn grid_for(m: &ModelGraph, c: &ClusterSpec, db: &ProfileDb) -> LatencyGrid {
        let sigs: Vec<u64> = m.ops.iter().map(ProfileDb::op_signature).collect();
        LatencyGrid::build(m, c, db, &sigs)
    }

    #[test]
    fn grid_hits_are_bit_identical_to_db() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let grid = grid_for(&m, &c, &db);
        assert!(grid.populated() > 0);
        for (g, op) in m.ops.iter().enumerate() {
            for dim in 0..op.partitions.len() {
                let mut tp = 1u32;
                while tp <= (c.total_gpus() as u32).min(op.tp_limit) {
                    for batch in [1u64, 2, 4, 16, 64] {
                        if batch > m.global_batch as u64 {
                            continue;
                        }
                        let hit = grid.lookup(g, tp, dim, batch).expect("in-range slot");
                        let want = db.op_fwd_time(op, tp, dim, batch);
                        assert_eq!(hit.to_bits(), want.to_bits(), "g={g} tp={tp} b={batch}");
                    }
                    tp *= 2;
                }
            }
        }
    }

    #[test]
    fn out_of_range_keys_miss() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let grid = grid_for(&m, &c, &db);
        // Non-power-of-two degrees and oversized batches must fall back.
        assert!(grid.lookup(0, 3, 0, 4).is_none());
        assert!(grid.lookup(0, 1, 0, 3).is_none());
        assert!(grid.lookup(0, 1, 0, 1 << 40).is_none());
        assert!(grid.lookup(0, 1, 99, 4).is_none());
        // tp beyond the cluster misses too.
        assert!(grid.lookup(0, 1 << 20, 0, 4).is_none());
    }

    #[test]
    fn zero_batch_clamps_to_one() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let grid = grid_for(&m, &c, &db);
        assert_eq!(
            grid.lookup(0, 1, 0, 0).map(f64::to_bits),
            grid.lookup(0, 1, 0, 1).map(f64::to_bits)
        );
    }
}
