//! Cross-thread memo for boundary point-to-point estimates.
//!
//! Every stage boundary charges [`aceso_profile::ProfileDb::p2p_time`]
//! for one `(bytes, from, to)` triple, and the same triples recur across
//! the per-stage-count search threads (a 4-stage and an 8-stage
//! sub-search cut the model at many of the same device boundaries). The
//! value is a pure function of the triple for a fixed cluster, so one
//! [`P2pMemo`] can be shared by reference across all sub-search threads:
//! whichever thread computes a triple first stores the exact `ProfileDb`
//! value and every later lookup returns it bit-for-bit.
//!
//! Bit-equality with the unmemoized path is enforced by
//! `tests/perf_equivalence.rs`.

use std::collections::HashMap;
use std::sync::RwLock;

/// Shared memo of boundary p2p times, keyed by `(bytes, from, to)`.
///
/// Thread-safe (`RwLock`-guarded) and deterministic: stored values come
/// straight from `ProfileDb::p2p_time`, which is itself a pure function
/// of the key, so the memo cannot change any estimate — only skip
/// recomputation.
#[derive(Debug, Default)]
pub struct P2pMemo {
    entries: RwLock<HashMap<(u64, usize, usize), f64>>,
}

impl P2pMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memoized time for `(bytes, from, to)`, computing and
    /// storing it via `compute` on first use.
    pub fn get_or_insert_with(
        &self,
        bytes: u64,
        from: usize,
        to: usize,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        let key = (bytes, from, to);
        if let Some(&t) = self.entries.read().expect("p2p memo lock").get(&key) {
            return t;
        }
        let t = compute();
        // A racing thread may have inserted the same key meanwhile; both
        // computed the identical pure-function value, so either insert
        // wins harmlessly.
        self.entries.write().expect("p2p memo lock").insert(key, t);
        t
    }

    /// Number of memoized triples.
    pub fn len(&self) -> usize {
        self.entries.read().expect("p2p memo lock").len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.read().expect("p2p memo lock").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_compute_wins_and_is_reused() {
        let memo = P2pMemo::new();
        let a = memo.get_or_insert_with(1024, 0, 1, || 0.5);
        // The second closure must not run: the stored value is returned.
        let b = memo.get_or_insert_with(1024, 0, 1, || panic!("memo missed"));
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let memo = P2pMemo::new();
        memo.get_or_insert_with(1024, 0, 1, || 0.5);
        memo.get_or_insert_with(1024, 1, 2, || 0.75);
        memo.get_or_insert_with(2048, 0, 1, || 0.25);
        assert_eq!(memo.len(), 3);
        assert_eq!(memo.get_or_insert_with(1024, 1, 2, || 0.0), 0.75);
    }

    #[test]
    fn shared_across_threads() {
        let memo = P2pMemo::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for b in 0..64u64 {
                        memo.get_or_insert_with(b, 0, 1, || b as f64 * 0.1);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 64);
    }
}
