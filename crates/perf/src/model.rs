//! The performance-model implementation.

use crate::estimate::{ConfigEstimate, StageEstimate};
use crate::grid::LatencyGrid;
use aceso_cluster::{ClusterSpec, Collective, CommGroup};
use aceso_config::validate::validate;
use aceso_config::{ConfigError, OpParallel, ParallelConfig};
use aceso_model::{Layout, ModelGraph, Operator, PartitionSpec, Scaling};
use aceso_obs::{Counter, HistKind, Recorder};
use aceso_profile::ProfileDb;
use std::collections::BTreeMap;

/// Deliberate pessimism of the reserved-memory estimate (§3.3): the max
/// per-op working set is tripled and a fixed CUDA-context/allocator-pool
/// term added. "Given the intricacy of the memory allocator and the risk
/// of underestimating memory consumption … we opt to overestimate."
const RESERVED_MULTIPLIER: u64 = 3;
/// Fixed per-device framework/context overhead assumed by the estimate.
const CONTEXT_BYTES: u64 = 1 << 30;

/// Profile-driven analytic performance model for one (model, cluster) pair.
pub struct PerfModel<'a> {
    model: &'a ModelGraph,
    cluster: &'a ClusterSpec,
    db: &'a ProfileDb,
    /// Precomputed per-op profile signatures (hot-path lookup key).
    sigs: Vec<u64>,
    /// SoA forward-latency grid (bit-identical fast path over `db`).
    grid: LatencyGrid,
    /// Optional observability recorder; evaluation counters and latency
    /// samples flow here when attached.
    obs: Option<&'a Recorder>,
    /// Optional shared boundary-p2p memo (one per search, shared across
    /// the stage-count sub-search threads).
    p2p: Option<&'a crate::p2p::P2pMemo>,
}

/// Effective layout of a tensor: sharding only exists when `tp > 1`.
fn effective_layout(layout: Layout, tp: u32) -> Layout {
    if tp > 1 {
        layout
    } else {
        Layout::Full
    }
}

/// Activation elements of `elems` held by one rank under `spec` at `tp`.
fn elems_per_rank(elems: u64, layout: Layout, scaling: Scaling, tp: u32) -> u64 {
    match (scaling, effective_layout(layout, tp)) {
        (Scaling::Divided, Layout::Sharded) => elems / u64::from(tp.max(1)),
        _ => elems,
    }
}

impl<'a> PerfModel<'a> {
    /// Creates a performance model over a profiled database.
    pub fn new(model: &'a ModelGraph, cluster: &'a ClusterSpec, db: &'a ProfileDb) -> Self {
        let sigs: Vec<u64> = model.ops.iter().map(ProfileDb::op_signature).collect();
        let grid = LatencyGrid::build(model, cluster, db, &sigs);
        Self {
            model,
            cluster,
            db,
            sigs,
            grid,
            obs: None,
            p2p: None,
        }
    }

    /// Attaches an observability recorder: every evaluation then counts
    /// itself ([`Counter::PerfEvaluations`], [`Counter::PerfFullEvals`],
    /// [`Counter::OomPredictions`]) and samples its wall-clock latency
    /// into [`HistKind::EvalLatencyUs`].
    pub fn with_obs(mut self, rec: &'a Recorder) -> Self {
        self.obs = Some(rec);
        self
    }

    /// Attaches a shared [`crate::P2pMemo`]: boundary p2p estimates are
    /// then looked up there first and stored on first computation. The
    /// memo stores exact `ProfileDb::p2p_time` values, so attaching it
    /// never changes an estimate (bit-equality is test-enforced).
    pub fn with_p2p_memo(mut self, memo: &'a crate::p2p::P2pMemo) -> Self {
        self.p2p = Some(memo);
        self
    }

    /// The attached recorder, if any (shared with [`crate::CachedEvaluator`]
    /// so the incremental path counts into the same sink).
    pub(crate) fn recorder(&self) -> Option<&'a Recorder> {
        self.obs
    }

    /// The model being evaluated.
    pub fn model(&self) -> &ModelGraph {
        self.model
    }

    /// The cluster being evaluated against.
    pub fn cluster(&self) -> &ClusterSpec {
        self.cluster
    }

    /// The underlying profile database.
    pub fn db(&self) -> &ProfileDb {
        self.db
    }

    /// Validates and evaluates a configuration.
    pub fn evaluate(&self, config: &ParallelConfig) -> Result<ConfigEstimate, ConfigError> {
        validate(config, self.model, self.cluster)?;
        Ok(self.evaluate_unchecked(config))
    }

    /// Evaluates a configuration assumed to be structurally valid.
    ///
    /// The multi-hop search validates once per primitive application and
    /// then scores many neighbours through this entry point.
    pub fn evaluate_unchecked(&self, config: &ParallelConfig) -> ConfigEstimate {
        match self.obs {
            Some(rec) if rec.enabled() => {
                let start = std::time::Instant::now();
                let est = self.evaluate_inner(config);
                rec.observe(HistKind::EvalLatencyUs, start.elapsed().as_secs_f64() * 1e6);
                rec.count(Counter::PerfEvaluations);
                rec.count(Counter::PerfFullEvals);
                if est.oom() {
                    rec.count(Counter::OomPredictions);
                }
                est
            }
            _ => self.evaluate_inner(config),
        }
    }

    /// The uninstrumented evaluation body: every stage from scratch.
    fn evaluate_inner(&self, config: &ParallelConfig) -> ConfigEstimate {
        let p = config.num_stages();
        let mut stages: Vec<StageEstimate> = Vec::with_capacity(p);
        for i in 0..p {
            stages.push(self.stage_with_boundaries(config, i));
        }
        self.assemble(config, stages)
    }

    /// One stage's breakdown with its boundary p2p folded in — the
    /// memoizable unit of evaluation. Everything here depends only on the
    /// stage's content, its first global device id, the predecessor's
    /// trailing data-parallel degree and whether a successor exists (the
    /// [`crate::CachedEvaluator`] cache key); position-dependent fields
    /// (`in_flight`, `mem_total`, `stage_time`) are assigned by
    /// [`Self::assemble`].
    pub(crate) fn stage_with_boundaries(&self, config: &ParallelConfig, i: usize) -> StageEstimate {
        let p = config.num_stages();
        let range = config.device_range(i);
        let mut est = self.stage_breakdown(config, i);

        // Boundary p2p with the next stage: activations forward,
        // gradients backward; both endpoints spend the transfer time.
        if i + 1 < p {
            let next_range = config.device_range(i + 1);
            let t = self.boundary_p2p(config, i, range.end() - 1, next_range.start);
            est.comm_fwd += t;
            est.comm_bwd += t;
        }
        if i > 0 {
            let prev_range = config.device_range(i - 1);
            let t = self.boundary_p2p(config, i - 1, prev_range.end() - 1, range.start);
            est.comm_fwd += t;
            est.comm_bwd += t;
        }
        est
    }

    /// Recombines per-stage estimates into the configuration-level
    /// prediction: assigns the position-dependent fields, runs the Eq. 2
    /// roll-up and the max scans. Shared by the full and the incremental
    /// path, so both produce bit-identical [`ConfigEstimate`]s from equal
    /// inputs (the floating-point summation order is fixed: stage order).
    pub(crate) fn assemble(
        &self,
        config: &ParallelConfig,
        mut stages: Vec<StageEstimate>,
    ) -> ConfigEstimate {
        let p = config.num_stages();
        let n_mb = config.num_microbatches(self.model.global_batch);
        for (i, s) in stages.iter_mut().enumerate() {
            s.in_flight = p - i;
            s.mem_total =
                s.mem_params + s.mem_opt + s.mem_act_per_mb * s.in_flight as u64 + s.mem_reserved;
        }

        // Eq. 2: per-stage time = pipeline warmup (one microbatch's forward
        // through all stages) + N steady periods + cooldown (backward
        // through all stages).
        let warmup: f64 = stages.iter().map(|s| s.comp_fwd + s.comm_fwd).sum();
        let cooldown: f64 = stages.iter().map(|s| s.comp_bwd + s.comm_bwd).sum();
        for s in &mut stages {
            s.stage_time = warmup + n_mb as f64 * s.steady_per_mb() + cooldown;
        }

        let mut slowest = 0usize;
        let mut iteration_time = 0.0f64;
        let mut max_memory = 0u64;
        let mut max_memory_stage = 0usize;
        for (i, s) in stages.iter().enumerate() {
            let t = s.stage_time + s.dp_sync;
            if t > iteration_time {
                iteration_time = t;
                slowest = i;
            }
            if s.mem_total > max_memory {
                max_memory = s.mem_total;
                max_memory_stage = i;
            }
        }

        ConfigEstimate {
            stages,
            num_microbatches: n_mb,
            iteration_time,
            slowest_stage: slowest,
            max_memory,
            max_memory_stage,
            mem_capacity: self.cluster.device.mem_bytes,
        }
    }

    /// Per-microbatch compute/comm and memory of one stage, *excluding*
    /// boundary p2p and the Eq. 2 roll-up (`stage_time` is left 0 and
    /// `mem_total` unassembled). The runtime simulator composes these raw
    /// ingredients with a true event-driven 1F1B schedule.
    pub fn stage_breakdown(&self, config: &ParallelConfig, stage_idx: usize) -> StageEstimate {
        let stage = &config.stages[stage_idx];
        let range = config.device_range(stage_idx);
        let m = config.microbatch as u64;
        let act_bytes = self.model.precision.bytes();
        // Parameters and gradients both live at model precision.
        let param_bytes = 2 * act_bytes;
        let opt_bytes = self.model.precision.optimizer_bytes();

        let mut est = StageEstimate {
            comp_fwd: 0.0,
            comp_bwd: 0.0,
            comm_fwd: 0.0,
            comm_bwd: 0.0,
            dp_sync: 0.0,
            mem_params: 0,
            mem_opt: 0,
            mem_act_per_mb: 0,
            in_flight: 1,
            mem_reserved: 0,
            mem_total: 0,
            stage_time: 0.0,
        };
        // Gradient-sync payload per (tp, dp) mesh, bucketed like DDP does.
        // Ordered maps: `dp_sync` sums floats in bucket-iteration order, and
        // the incremental path must reproduce the full path bit-for-bit.
        let mut grad_buckets: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        // ZeRO-1 parameter all-gather payload per mesh.
        let mut zero_buckets: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut prev: Option<(&Operator, &PartitionSpec, OpParallel)> = None;

        for (j, para) in stage.ops.iter().enumerate() {
            let g = stage.op_start + j;
            let op = &self.model.ops[g];
            let dim = usize::from(para.dim_index);
            let spec = op.partition(dim);
            let per_dev_batch = m / u64::from(para.dp);

            // Compute (backward ≈ 2× forward; recompute re-runs forward).
            // The SoA grid serves power-of-two keys without touching the
            // lock-guarded database; misses fall back to the identical
            // database value.
            let f = self
                .grid
                .lookup(g, para.tp, dim, per_dev_batch)
                .unwrap_or_else(|| {
                    self.db
                        .op_fwd_time_sig(self.sigs[g], op, para.tp, dim, per_dev_batch)
                });
            est.comp_fwd += f;
            est.comp_bwd += 2.0 * f + if para.recompute { f } else { 0.0 };

            // Tensor-parallel collectives.
            if para.tp > 1 {
                let group = CommGroup::contiguous(range.start, para.tp as usize);
                let fwd_bytes = spec.fwd_comm_elems * per_dev_batch * act_bytes;
                let bwd_bytes = spec.bwd_comm_elems * per_dev_batch * act_bytes;
                let t_fwd = self
                    .db
                    .collective_time(Collective::AllReduce, fwd_bytes, &group);
                let t_bwd = self
                    .db
                    .collective_time(Collective::AllReduce, bwd_bytes, &group);
                est.comm_fwd += t_fwd;
                est.comm_bwd += t_bwd + if para.recompute { t_fwd } else { 0.0 };
            }

            // Resharding against the previous op in the stage (§4.2's
            // all-gather between tp/dp concurrency changes).
            if let Some((pop, pspec, ppara)) = prev {
                let t = self.reshard_time(range.start, pop, pspec, ppara, spec, *para, m);
                est.comm_fwd += t;
                est.comm_bwd += t;
            }

            // Memory.
            let params_rank = op.params_per_rank(dim, para.tp);
            est.mem_params += params_rank * param_bytes;
            // ZeRO-1 extension: optimiser states shard across the dp group.
            if para.zero && para.dp > 1 {
                est.mem_opt += params_rank * opt_bytes / u64::from(para.dp);
                *zero_buckets.entry((para.tp, para.dp)).or_insert(0) += params_rank * act_bytes;
            } else {
                est.mem_opt += params_rank * opt_bytes;
            }
            if para.dp > 1 {
                *grad_buckets.entry((para.tp, para.dp)).or_insert(0) += params_rank * act_bytes;
            }
            let ws = self.db.op_working_set(op, para.tp, dim, per_dev_batch);
            est.mem_reserved = est
                .mem_reserved
                .max(RESERVED_MULTIPLIER * ws + CONTEXT_BYTES);

            // Activation stash: recomputed runs keep only the run's input.
            let recompute_run_start = para.recompute && (j == 0 || !stage.ops[j - 1].recompute);
            if !para.recompute {
                est.mem_act_per_mb += op.stash_per_rank(dim, para.tp) * per_dev_batch * act_bytes;
            } else if recompute_run_start {
                let in_rank =
                    elems_per_rank(op.input_elems, spec.input_layout, spec.scaling, para.tp);
                est.mem_act_per_mb += in_rank * per_dev_batch * act_bytes;
            }

            prev = Some((op, spec, *para));
        }

        // Data-parallel gradient sync, one ring per mesh bucket.
        for ((tp, dp), bytes) in grad_buckets {
            let group = CommGroup::strided(range.start, dp as usize, tp as usize);
            est.dp_sync += self
                .db
                .collective_time(Collective::AllReduce, bytes, &group);
        }
        // ZeRO-1: each replica re-gathers the freshly updated parameters.
        for ((tp, dp), bytes) in zero_buckets {
            let group = CommGroup::strided(range.start, dp as usize, tp as usize);
            est.dp_sync += self
                .db
                .collective_time(Collective::AllGather, bytes, &group);
        }
        est
    }

    /// Communication cost of moving a tensor between two consecutive ops
    /// whose parallelisms differ (layout gather + batch redistribution).
    #[allow(clippy::too_many_arguments)]
    fn reshard_time(
        &self,
        group_start: usize,
        prev_op: &Operator,
        prev_spec: &PartitionSpec,
        prev: OpParallel,
        next_spec: &PartitionSpec,
        next: OpParallel,
        microbatch: u64,
    ) -> f64 {
        let act_bytes = self.model.precision.bytes();
        let out_layout = effective_layout(prev_spec.output_layout, prev.tp);
        let in_layout = effective_layout(next_spec.input_layout, next.tp);
        let replica_bytes = prev_op.output_elems * (microbatch / u64::from(prev.dp)) * act_bytes;
        let mut t = 0.0;

        // Gather when the produced sharding can't be consumed directly:
        // consumer wants it Full, or the tp degree changes.
        let sharding_mismatch =
            out_layout == Layout::Sharded && (in_layout == Layout::Full || next.tp != prev.tp);
        if sharding_mismatch {
            let group = CommGroup::contiguous(group_start, prev.tp as usize);
            t += self
                .db
                .collective_time(Collective::AllGather, replica_bytes, &group);
        }

        // Batch redistribution when the data-parallel degree changes: each
        // device sheds/acquires the sample-count difference over NVLink.
        if next.dp != prev.dp {
            let per_prev = microbatch / u64::from(prev.dp);
            let per_next = microbatch / u64::from(next.dp);
            let moved = per_prev.abs_diff(per_next);
            let bytes = prev_op.output_elems * moved * act_bytes;
            t += bytes as f64 / self.cluster.nvlink_bw + self.cluster.lat_intra;
        }
        t
    }

    /// Forward p2p time of the boundary after `stage_idx` for one
    /// microbatch (the producing replica's full output tensor).
    pub fn boundary_p2p(
        &self,
        config: &ParallelConfig,
        stage_idx: usize,
        from: usize,
        to: usize,
    ) -> f64 {
        let stage = &config.stages[stage_idx];
        let last = stage.ops.last().expect("validated stage is non-empty");
        let op = &self.model.ops[stage.op_end - 1];
        let bytes = op.output_elems
            * (config.microbatch as u64 / u64::from(last.dp))
            * self.model.precision.bytes();
        match self.p2p {
            Some(memo) => {
                memo.get_or_insert_with(bytes, from, to, || self.db.p2p_time(bytes, from, to))
            }
            None => self.db.p2p_time(bytes, from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_cluster::ClusterSpec;
    use aceso_config::{balanced_init, StageConfig};
    use aceso_model::zoo::{gpt3_custom, wide_resnet, WideResnetSize};

    fn setup(gpus: usize) -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("t", 4, 512, 8, 256, 8192, 64),
            ClusterSpec::v100(1, gpus),
        )
    }

    fn eval(model: &ModelGraph, cluster: &ClusterSpec, config: &ParallelConfig) -> ConfigEstimate {
        let db = ProfileDb::build(model, cluster);
        let pm = PerfModel::new(model, cluster, &db);
        pm.evaluate(config).expect("valid config evaluates")
    }

    #[test]
    fn balanced_config_evaluates() {
        let (m, c) = setup(4);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let est = eval(&m, &c, &cfg);
        assert!(est.iteration_time > 0.0);
        assert_eq!(est.stages.len(), 2);
        assert!(est.num_microbatches >= 1);
        assert!(est.throughput(m.global_batch) > 0.0);
        // Earlier stages keep more in-flight microbatches.
        assert_eq!(est.stages[0].in_flight, 2);
        assert_eq!(est.stages[1].in_flight, 1);
    }

    #[test]
    fn recompute_trades_time_for_memory() {
        let (m, c) = setup(4);
        let mut cfg = balanced_init(&m, &c, 2).expect("init");
        let base = eval(&m, &c, &cfg);
        for op in &mut cfg.stages[0].ops {
            op.recompute = true;
        }
        let rc = eval(&m, &c, &cfg);
        assert!(rc.stages[0].mem_act_per_mb < base.stages[0].mem_act_per_mb);
        assert!(rc.stages[0].comp_bwd > base.stages[0].comp_bwd);
        assert!((rc.stages[0].comp_fwd - base.stages[0].comp_fwd).abs() < 1e-12);
    }

    #[test]
    fn tensor_parallel_shrinks_params_adds_comm() {
        let (m, c) = setup(4);
        let n = m.len();
        let dp4 = ParallelConfig {
            stages: vec![StageConfig::uniform(0, n, OpParallel::data_parallel(4))],
            microbatch: 4,
        };
        let tp4 = ParallelConfig {
            stages: vec![StageConfig::uniform(
                0,
                n,
                OpParallel {
                    tp: 4,
                    dp: 1,
                    dim_index: 0,
                    recompute: false,
                    zero: false,
                },
            )],
            microbatch: 4,
        };
        let a = eval(&m, &c, &dp4);
        let b = eval(&m, &c, &tp4);
        assert!(b.stages[0].mem_params < a.stages[0].mem_params);
        assert!(b.stages[0].comm_per_mb() > a.stages[0].comm_per_mb());
        // dp pays gradient sync instead.
        assert!(a.stages[0].dp_sync > b.stages[0].dp_sync);
    }

    #[test]
    fn oom_detected_for_oversized_model() {
        // A 2.6B-param model on one 32 GB GPU cannot fit: params, grads and
        // optimiser states alone need ≈ 47 GB.
        let m = gpt3_custom("big", 32, 2560, 32, 2048, 51200, 1024);
        let c = ClusterSpec::v100(1, 1);
        let cfg = balanced_init(&m, &c, 1).expect("init");
        let est = eval(&m, &c, &cfg);
        assert!(est.oom());
        assert!(est.score() > est.iteration_time * 1000.0);
    }

    #[test]
    fn memory_eq1_components_sum() {
        let (m, c) = setup(4);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let est = eval(&m, &c, &cfg);
        for s in &est.stages {
            assert_eq!(
                s.mem_total,
                s.mem_params + s.mem_opt + s.mem_act_per_mb * s.in_flight as u64 + s.mem_reserved
            );
        }
    }

    #[test]
    fn smaller_microbatch_means_more_microbatches() {
        let (m, c) = setup(4);
        let mut cfg = balanced_init(&m, &c, 2).expect("init");
        cfg.microbatch = 4;
        let a = eval(&m, &c, &cfg);
        cfg.microbatch = 8;
        let b = eval(&m, &c, &cfg);
        assert_eq!(a.num_microbatches, 2 * b.num_microbatches);
        // Larger microbatch stashes more per in-flight microbatch.
        assert!(b.stages[0].mem_act_per_mb > a.stages[0].mem_act_per_mb);
    }

    #[test]
    fn pipeline_bottleneck_is_max_stage() {
        let (m, c) = setup(4);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let est = eval(&m, &c, &cfg);
        let max = est
            .stages
            .iter()
            .map(|s| s.stage_time + s.dp_sync)
            .fold(0.0f64, f64::max);
        assert!((est.iteration_time - max).abs() < 1e-12);
    }

    #[test]
    fn wide_resnet_evaluates() {
        let m = wide_resnet(WideResnetSize::S0_5b);
        let c = ClusterSpec::v100(1, 4);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let est = eval(&m, &c, &cfg);
        assert!(est.iteration_time > 0.0);
    }

    #[test]
    fn deterministic_evaluation() {
        let (m, c) = setup(4);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let a = eval(&m, &c, &cfg);
        let b = eval(&m, &c, &cfg);
        assert_eq!(a.iteration_time, b.iteration_time);
        assert_eq!(a.max_memory, b.max_memory);
    }

    #[test]
    fn in_stage_tp_change_charges_resharding() {
        // §4.2: altering tp/dp inside a stage needs an all-gather at the
        // seam; the model must charge communication for it.
        let (m, c) = setup(4);
        let n = m.len();
        let uniform = ParallelConfig {
            stages: vec![StageConfig::uniform(
                0,
                n,
                OpParallel {
                    tp: 4,
                    dp: 1,
                    dim_index: 0,
                    recompute: false,
                    zero: false,
                },
            )],
            microbatch: 4,
        };
        let mut mixed = uniform.clone();
        for op in mixed.stages[0].ops.iter_mut().skip(n / 2) {
            op.tp = 1;
            op.dp = 4;
        }
        let a = eval(&m, &c, &uniform);
        let b = eval(&m, &c, &mixed);
        assert!(a.stages[0].comm_per_mb() > 0.0);
        assert!(b.stages[0].comm_per_mb() > 0.0);
        assert_ne!(a.stages[0].comm_per_mb(), b.stages[0].comm_per_mb());
    }

    #[test]
    fn boundary_p2p_charged() {
        let (m, c) = setup(4);
        let cfg2 = balanced_init(&m, &c, 2).expect("init");
        let db = ProfileDb::build(&m, &c);
        let pm = PerfModel::new(&m, &c, &db);
        let boundary = pm.boundary_p2p(&cfg2, 0, cfg2.stages[0].gpus - 1, cfg2.stages[0].gpus);
        assert!(boundary > 0.0);
        // Stage comm in the full evaluation includes that transfer.
        let bd = pm.stage_breakdown(&cfg2, 0);
        let full = pm.evaluate_unchecked(&cfg2);
        assert!(full.stages[0].comm_fwd >= bd.comm_fwd + boundary * 0.99);
    }
}
