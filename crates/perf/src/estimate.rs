//! Estimate types produced by the performance model.

/// Predicted resources and times for one pipeline stage (one representative
/// device — in-stage symmetry makes all devices of a stage equal, §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct StageEstimate {
    /// Forward compute time per microbatch (seconds).
    pub comp_fwd: f64,
    /// Backward compute time per microbatch, including recomputation.
    pub comp_bwd: f64,
    /// Forward communication per microbatch (tp collectives, resharding,
    /// boundary p2p).
    pub comm_fwd: f64,
    /// Backward communication per microbatch.
    pub comm_bwd: f64,
    /// Gradient-synchronisation time per iteration (data parallelism).
    pub dp_sync: f64,
    /// Parameter + gradient bytes per device.
    pub mem_params: u64,
    /// Optimiser-state bytes per device.
    pub mem_opt: u64,
    /// Activation bytes stashed per microbatch per device.
    pub mem_act_per_mb: u64,
    /// Number of in-flight microbatches under 1F1B (`p − i`).
    pub in_flight: usize,
    /// Reserved-memory overestimate (max per-op working set), bytes.
    pub mem_reserved: u64,
    /// Total predicted peak memory per device (Eq. 1 + reserved), bytes.
    pub mem_total: u64,
    /// Per-stage iteration time (Eq. 2), seconds.
    pub stage_time: f64,
}

impl StageEstimate {
    /// Total compute time per microbatch.
    pub fn comp_per_mb(&self) -> f64 {
        self.comp_fwd + self.comp_bwd
    }

    /// Total communication time per microbatch.
    pub fn comm_per_mb(&self) -> f64 {
        self.comm_fwd + self.comm_bwd
    }

    /// Steady-state time per microbatch (compute + communication).
    pub fn steady_per_mb(&self) -> f64 {
        self.comp_per_mb() + self.comm_per_mb()
    }
}

/// Whole-configuration prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigEstimate {
    /// Per-stage breakdown.
    pub stages: Vec<StageEstimate>,
    /// Number of microbatches per iteration.
    pub num_microbatches: usize,
    /// Predicted iteration time: `max_i (stage_time_i + dp_sync_i)`.
    pub iteration_time: f64,
    /// Index of the slowest stage.
    pub slowest_stage: usize,
    /// Largest per-device memory across stages, bytes.
    pub max_memory: u64,
    /// Index of the most memory-hungry stage.
    pub max_memory_stage: usize,
    /// Device memory capacity the prediction was made against, bytes.
    pub mem_capacity: u64,
}

impl ConfigEstimate {
    /// Whether any stage exceeds device memory.
    pub fn oom(&self) -> bool {
        self.max_memory > self.mem_capacity
    }

    /// Training throughput in samples/second for `global_batch`.
    pub fn throughput(&self, global_batch: usize) -> f64 {
        if self.iteration_time <= 0.0 {
            return 0.0;
        }
        global_batch as f64 / self.iteration_time
    }

    /// A single scalar for comparing configurations: iteration time, with
    /// OOM configurations ranked strictly worse than any feasible one by
    /// adding the memory overshoot as a penalty multiplier.
    ///
    /// The search minimises this; the paper's Algorithm 2 compares
    /// "performance" where an infeasible configuration becoming feasible
    /// counts as an improvement — this scalar encodes exactly that order.
    pub fn score(&self) -> f64 {
        if self.oom() {
            let overshoot = self.max_memory as f64 / self.mem_capacity as f64;
            // Any OOM config scores ≥ 1e6× a feasible one; deeper overshoot
            // scores worse, so reducing memory pressure always improves.
            1e6 * self.iteration_time * overshoot
        } else {
            self.iteration_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(comp: f64, comm: f64, mem: u64) -> StageEstimate {
        StageEstimate {
            comp_fwd: comp / 3.0,
            comp_bwd: 2.0 * comp / 3.0,
            comm_fwd: comm / 2.0,
            comm_bwd: comm / 2.0,
            dp_sync: 0.0,
            mem_params: 0,
            mem_opt: 0,
            mem_act_per_mb: 0,
            in_flight: 1,
            mem_reserved: 0,
            mem_total: mem,
            stage_time: comp + comm,
        }
    }

    fn estimate(mem: u64, cap: u64) -> ConfigEstimate {
        ConfigEstimate {
            stages: vec![stage(1.0, 0.5, mem)],
            num_microbatches: 4,
            iteration_time: 1.5,
            slowest_stage: 0,
            max_memory: mem,
            max_memory_stage: 0,
            mem_capacity: cap,
        }
    }

    #[test]
    fn per_mb_sums() {
        let s = stage(3.0, 1.0, 0);
        assert!((s.comp_per_mb() - 3.0).abs() < 1e-12);
        assert!((s.comm_per_mb() - 1.0).abs() < 1e-12);
        assert!((s.steady_per_mb() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn oom_flag() {
        assert!(!estimate(10, 20).oom());
        assert!(estimate(30, 20).oom());
    }

    #[test]
    fn score_orders_oom_below_feasible() {
        let ok = estimate(10, 20);
        let bad = estimate(30, 20);
        assert!(bad.score() > ok.score() * 1000.0);
        // Deeper overshoot is worse.
        let worse = estimate(40, 20);
        assert!(worse.score() > bad.score());
    }

    #[test]
    fn feasible_score_is_iteration_time() {
        let e = estimate(10, 20);
        assert_eq!(e.score(), e.iteration_time);
    }

    #[test]
    fn throughput_basic() {
        let e = estimate(10, 20);
        assert!((e.throughput(1024) - 1024.0 / 1.5).abs() < 1e-9);
    }
}
