//! Incremental evaluation: per-stage memoization over the perf model.
//!
//! The search's inner loop evaluates tens of thousands of configurations,
//! but every reconfiguration primitive touches at most two stages — the
//! other stages' breakdowns are recomputed from scratch anyway. The
//! [`CachedEvaluator`] memoizes per-stage estimates keyed by stage
//! *content* plus the minimal boundary context, so scoring a neighbour
//! only re-estimates the touched stage(s) and recombines the pipeline
//! total via the same `PerfModel::assemble` arithmetic the full path
//! uses — the incremental result is **bit-identical** to a from-scratch
//! evaluation (enforced by `tests/perf_equivalence.rs`).
//!
//! ## Cache key
//!
//! A stage's breakdown-plus-boundaries depends only on:
//!
//! - the stage content: op range, device count and per-op settings
//!   (run-length hashed exactly like `ParallelConfig::semantic_hash`),
//! - the global microbatch size,
//! - the stage's first global device id (collective and p2p times depend
//!   on node crossings; device ranges are contiguous, so both boundary
//!   endpoints derive from it),
//! - the predecessor's trailing data-parallel degree (sizes the inbound
//!   boundary transfer; `0` encodes "no predecessor"), and
//! - whether a successor exists (the outbound transfer's size and
//!   endpoints already follow from the stage's own content).
//!
//! Position-dependent fields (`in_flight`, `mem_total`, `stage_time`) are
//! *not* cached — `PerfModel::assemble` assigns them on every
//! evaluation, so one cached entry serves the same stage content at any
//! pipeline position or depth.

use crate::estimate::{ConfigEstimate, StageEstimate};
use crate::model::PerfModel;
use aceso_cluster::ClusterSpec;
use aceso_config::ParallelConfig;
use aceso_model::ModelGraph;
use aceso_obs::{Counter, HistKind};
use aceso_util::FnvHasher;
use std::cell::RefCell;
use std::collections::HashMap;

/// Memo-table entry cap; the table is cleared wholesale when it fills
/// (simple, deterministic, and a search stays far below this in
/// practice).
const MEMO_CAP: usize = 1 << 20;

/// The scoring oracle interface shared by the plain [`PerfModel`] and the
/// memoizing [`CachedEvaluator`]: everything the search, fine-tuning and
/// candidate generation need from an evaluator.
pub trait Evaluator {
    /// The model being evaluated.
    fn model(&self) -> &ModelGraph;
    /// The cluster being evaluated against.
    fn cluster(&self) -> &ClusterSpec;
    /// Evaluates a configuration assumed to be structurally valid.
    fn evaluate_unchecked(&self, config: &ParallelConfig) -> ConfigEstimate;
}

impl Evaluator for PerfModel<'_> {
    fn model(&self) -> &ModelGraph {
        PerfModel::model(self)
    }
    fn cluster(&self) -> &ClusterSpec {
        PerfModel::cluster(self)
    }
    fn evaluate_unchecked(&self, config: &ParallelConfig) -> ConfigEstimate {
        PerfModel::evaluate_unchecked(self, config)
    }
}

/// Memoization key of one stage's breakdown-plus-boundaries (see the
/// module docs for why exactly these fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct StageKey {
    /// FNV over op range, device count and run-length-encoded op settings.
    content: u64,
    /// Global microbatch size.
    microbatch: usize,
    /// First global device id of the stage.
    dev_start: usize,
    /// Trailing op's `dp` of the predecessor stage; `0` = first stage.
    prev_last_dp: u32,
    /// Whether a successor stage exists.
    has_next: bool,
}

/// One exported memo-table entry: the internal stage-key fields
/// (flattened, so callers never depend on the private key type) plus the
/// estimate. Field meanings match the cache-key description in the
/// module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoEntry {
    /// FNV over op range, device count and run-length-encoded op settings.
    pub content: u64,
    /// Global microbatch size.
    pub microbatch: usize,
    /// First global device id of the stage.
    pub dev_start: usize,
    /// Trailing op's `dp` of the predecessor stage; `0` = first stage.
    pub prev_last_dp: u32,
    /// Whether a successor stage exists.
    pub has_next: bool,
    /// The memoized per-stage estimate.
    pub estimate: StageEstimate,
}

impl MemoEntry {
    fn key(&self) -> StageKey {
        StageKey {
            content: self.content,
            microbatch: self.microbatch,
            dev_start: self.dev_start,
            prev_last_dp: self.prev_last_dp,
            has_next: self.has_next,
        }
    }
}

/// One speculative evaluation, captured by a frontier worker so the
/// reducer can replay it against the canonical evaluator without
/// recomputing anything.
///
/// `entries` holds every stage's key + estimate **in stage order** —
/// including stages the worker served from its own memo, because the
/// canonical memo may disagree with the worker's about what is already
/// cached. Replaying with [`CachedEvaluator::absorb_trace`] therefore
/// reproduces the exact hit/miss sequence (and counter splits) a serial
/// search would have produced.
#[derive(Debug, Clone)]
pub struct EvalTrace {
    /// Per-stage memo entries in stage order.
    pub entries: Vec<MemoEntry>,
    /// Whether the assembled estimate predicted an out-of-memory config.
    pub oom: bool,
    /// Worker-measured wall-clock latency of the evaluation (µs). Only
    /// ever surfaces in the `eval_latency_us` histogram, which every
    /// bit-identity comparison already masks.
    pub latency_us: f64,
}

fn stage_key(config: &ParallelConfig, i: usize, dev_start: usize) -> StageKey {
    let s = &config.stages[i];
    let mut h = FnvHasher::new();
    h.write_usize(s.op_start);
    h.write_usize(s.op_end);
    h.write_usize(s.gpus);
    // Run-length encode per-op settings, mirroring `semantic_hash`.
    let mut j = 0;
    while j < s.ops.len() {
        let o = s.ops[j];
        let mut run = 1;
        while j + run < s.ops.len() && s.ops[j + run] == o {
            run += 1;
        }
        h.write_usize(run);
        h.write_u64(u64::from(o.tp));
        h.write_u64(u64::from(o.dp));
        h.write_u64(u64::from(o.dim_index));
        h.write_bool(o.recompute);
        h.write_bool(o.zero);
        j += run;
    }
    StageKey {
        content: h.finish(),
        microbatch: config.microbatch,
        dev_start,
        prev_last_dp: if i == 0 {
            0
        } else {
            config.stages[i - 1].ops.last().map_or(0, |o| o.dp)
        },
        has_next: i + 1 < config.stages.len(),
    }
}

/// A [`PerfModel`] wrapper that serves per-stage estimates from a memo
/// table. Single-threaded by design (interior mutability via `RefCell`):
/// each stage-count search thread owns its own evaluator, exactly like it
/// owns its own [`aceso_obs::Recorder`].
pub struct CachedEvaluator<'a> {
    pm: PerfModel<'a>,
    memo: RefCell<HashMap<StageKey, StageEstimate>>,
}

impl<'a> CachedEvaluator<'a> {
    /// Wraps a performance model (taking over its observability recorder,
    /// if attached).
    pub fn new(pm: PerfModel<'a>) -> Self {
        Self {
            pm,
            memo: RefCell::new(HashMap::new()),
        }
    }

    /// The wrapped performance model.
    pub fn inner(&self) -> &PerfModel<'a> {
        &self.pm
    }

    /// Number of memoized per-stage estimates.
    pub fn memo_len(&self) -> usize {
        self.memo.borrow().len()
    }

    /// Drops every memoized estimate.
    pub fn clear(&self) {
        self.memo.borrow_mut().clear();
    }

    /// Exports the memo table as [`MemoEntry`] values in a deterministic
    /// (key-sorted) order, for checkpointing. Restoring the export with
    /// [`CachedEvaluator::import_memo`] reproduces the table exactly, so a
    /// resumed search sees the same hit/miss sequence — and therefore the
    /// same counter splits — as an uninterrupted one.
    pub fn export_memo(&self) -> Vec<MemoEntry> {
        let memo = self.memo.borrow();
        let mut entries: Vec<(StageKey, StageEstimate)> =
            memo.iter().map(|(k, v)| (*k, v.clone())).collect();
        entries.sort_by_key(|(k, _)| *k);
        entries
            .into_iter()
            .map(|(k, estimate)| MemoEntry {
                content: k.content,
                microbatch: k.microbatch,
                dev_start: k.dev_start,
                prev_last_dp: k.prev_last_dp,
                has_next: k.has_next,
                estimate,
            })
            .collect()
    }

    /// Replaces the memo table with previously exported entries.
    pub fn import_memo(&self, entries: Vec<MemoEntry>) {
        let mut memo = self.memo.borrow_mut();
        memo.clear();
        for e in entries {
            memo.insert(
                StageKey {
                    content: e.content,
                    microbatch: e.microbatch,
                    dev_start: e.dev_start,
                    prev_last_dp: e.prev_last_dp,
                    has_next: e.has_next,
                },
                e.estimate,
            );
        }
    }

    /// Evaluates a configuration *and* captures the per-stage memo
    /// entries as an [`EvalTrace`], so a different (canonical) evaluator
    /// can later [`absorb_trace`](Self::absorb_trace) the result instead
    /// of recomputing it. Used by frontier workers; never records
    /// observability itself (worker evaluators carry no recorder).
    pub fn evaluate_traced(&self, config: &ParallelConfig) -> (ConfigEstimate, EvalTrace) {
        let start = std::time::Instant::now();
        let p = config.num_stages();
        let mut stages: Vec<StageEstimate> = Vec::with_capacity(p);
        let mut entries: Vec<MemoEntry> = Vec::with_capacity(p);
        let mut dev_start = 0usize;
        for i in 0..p {
            let key = stage_key(config, i, dev_start);
            let cached = self.memo.borrow().get(&key).cloned();
            let e = match cached {
                Some(e) => e,
                None => {
                    let e = self.pm.stage_with_boundaries(config, i);
                    let mut memo = self.memo.borrow_mut();
                    if memo.len() >= MEMO_CAP {
                        memo.clear();
                    }
                    memo.insert(key, e.clone());
                    e
                }
            };
            entries.push(MemoEntry {
                content: key.content,
                microbatch: key.microbatch,
                dev_start: key.dev_start,
                prev_last_dp: key.prev_last_dp,
                has_next: key.has_next,
                estimate: e.clone(),
            });
            stages.push(e);
            dev_start += config.stages[i].gpus;
        }
        let est = self.pm.assemble(config, stages);
        let trace = EvalTrace {
            entries,
            oom: est.oom(),
            latency_us: start.elapsed().as_secs_f64() * 1e6,
        };
        (est, trace)
    }

    /// Replays a worker-captured [`EvalTrace`] against *this* evaluator's
    /// memo table, reproducing exactly what a direct
    /// [`evaluate_unchecked`](Evaluator::evaluate_unchecked) of the same
    /// configuration would have done at this point: per stage, a present
    /// key counts as a hit, an absent one is inserted (with the same
    /// wholesale cap-clear), and the recorder — if one is attached and
    /// enabled — sees the same `perf_evaluations` /
    /// `perf_incremental_hits` / `perf_full_evals` / `oom_predictions`
    /// accounting and `eval_latency_us` observation.
    pub fn absorb_trace(&self, trace: &EvalTrace) {
        let mut hits = 0usize;
        {
            let mut memo = self.memo.borrow_mut();
            for e in &trace.entries {
                let key = e.key();
                if memo.contains_key(&key) {
                    hits += 1;
                } else {
                    if memo.len() >= MEMO_CAP {
                        memo.clear();
                    }
                    memo.insert(key, e.estimate.clone());
                }
            }
        }
        if let Some(rec) = self.pm.recorder() {
            if rec.enabled() {
                rec.observe(HistKind::EvalLatencyUs, trace.latency_us);
                rec.count(Counter::PerfEvaluations);
                rec.count(if hits > 0 {
                    Counter::PerfIncrementalHits
                } else {
                    Counter::PerfFullEvals
                });
                if trace.oom {
                    rec.count(Counter::OomPredictions);
                }
            }
        }
    }

    /// The evaluation body; returns the estimate and whether at least one
    /// stage was served from the memo table.
    fn evaluate_cached(&self, config: &ParallelConfig) -> (ConfigEstimate, bool) {
        let p = config.num_stages();
        let mut stages: Vec<StageEstimate> = Vec::with_capacity(p);
        let mut hits = 0usize;
        let mut dev_start = 0usize;
        for i in 0..p {
            let key = stage_key(config, i, dev_start);
            let cached = self.memo.borrow().get(&key).cloned();
            match cached {
                Some(e) => {
                    hits += 1;
                    stages.push(e);
                }
                None => {
                    let e = self.pm.stage_with_boundaries(config, i);
                    let mut memo = self.memo.borrow_mut();
                    if memo.len() >= MEMO_CAP {
                        memo.clear();
                    }
                    memo.insert(key, e.clone());
                    stages.push(e);
                }
            }
            dev_start += config.stages[i].gpus;
        }
        (self.pm.assemble(config, stages), hits > 0)
    }
}

impl Evaluator for CachedEvaluator<'_> {
    fn model(&self) -> &ModelGraph {
        self.pm.model()
    }
    fn cluster(&self) -> &ClusterSpec {
        self.pm.cluster()
    }
    fn evaluate_unchecked(&self, config: &ParallelConfig) -> ConfigEstimate {
        match self.pm.recorder() {
            Some(rec) if rec.enabled() => {
                let start = std::time::Instant::now();
                let (est, hit) = self.evaluate_cached(config);
                rec.observe(HistKind::EvalLatencyUs, start.elapsed().as_secs_f64() * 1e6);
                rec.count(Counter::PerfEvaluations);
                rec.count(if hit {
                    Counter::PerfIncrementalHits
                } else {
                    Counter::PerfFullEvals
                });
                if est.oom() {
                    rec.count(Counter::OomPredictions);
                }
                est
            }
            _ => self.evaluate_cached(config).0,
        }
    }
}

/// An [`Evaluator`] adapter that records an [`EvalTrace`] for every
/// evaluation routed through it. Frontier workers wrap their private
/// [`CachedEvaluator`] in one of these while running candidate
/// generation, so the generator's internal evaluations (the attached
/// recompute fix-up) can be replayed on the canonical evaluator in
/// exact serial order.
pub struct TracingEvaluator<'e, 'a> {
    inner: &'e CachedEvaluator<'a>,
    traces: RefCell<Vec<EvalTrace>>,
}

impl<'e, 'a> TracingEvaluator<'e, 'a> {
    /// Wraps a worker-owned evaluator.
    pub fn new(inner: &'e CachedEvaluator<'a>) -> Self {
        Self {
            inner,
            traces: RefCell::new(Vec::new()),
        }
    }

    /// Takes the traces captured so far, in evaluation order.
    pub fn take_traces(&self) -> Vec<EvalTrace> {
        std::mem::take(&mut self.traces.borrow_mut())
    }
}

impl Evaluator for TracingEvaluator<'_, '_> {
    fn model(&self) -> &ModelGraph {
        self.inner.model()
    }
    fn cluster(&self) -> &ClusterSpec {
        self.inner.cluster()
    }
    fn evaluate_unchecked(&self, config: &ParallelConfig) -> ConfigEstimate {
        let (est, trace) = self.inner.evaluate_traced(config);
        self.traces.borrow_mut().push(trace);
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aceso_cluster::ClusterSpec;
    use aceso_config::{balanced_init, OpParallel, StageConfig};
    use aceso_model::zoo::gpt3_custom;
    use aceso_profile::ProfileDb;

    fn setup() -> (ModelGraph, ClusterSpec) {
        (
            gpt3_custom("t", 4, 512, 8, 256, 8192, 64),
            ClusterSpec::v100(1, 4),
        )
    }

    fn assert_bit_identical(a: &ConfigEstimate, b: &ConfigEstimate) {
        assert_eq!(a.iteration_time.to_bits(), b.iteration_time.to_bits());
        assert_eq!(a.max_memory, b.max_memory);
        assert_eq!(a.slowest_stage, b.slowest_stage);
        assert_eq!(a.stages.len(), b.stages.len());
        for (x, y) in a.stages.iter().zip(&b.stages) {
            assert_eq!(x.comp_fwd.to_bits(), y.comp_fwd.to_bits());
            assert_eq!(x.comp_bwd.to_bits(), y.comp_bwd.to_bits());
            assert_eq!(x.comm_fwd.to_bits(), y.comm_fwd.to_bits());
            assert_eq!(x.comm_bwd.to_bits(), y.comm_bwd.to_bits());
            assert_eq!(x.dp_sync.to_bits(), y.dp_sync.to_bits());
            assert_eq!(x.stage_time.to_bits(), y.stage_time.to_bits());
            assert_eq!(x.mem_total, y.mem_total);
            assert_eq!(x.in_flight, y.in_flight);
        }
    }

    #[test]
    fn cold_then_warm_matches_full() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let pm = PerfModel::new(&m, &c, &db);
        let full = pm.evaluate_unchecked(&balanced_init(&m, &c, 2).expect("init"));
        let ev = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let cold = ev.evaluate_unchecked(&cfg);
        assert!(ev.memo_len() > 0);
        let warm = ev.evaluate_unchecked(&cfg);
        assert_bit_identical(&full, &cold);
        assert_bit_identical(&full, &warm);
    }

    #[test]
    fn single_stage_change_reuses_untouched_stages() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let ev = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        let cfg = balanced_init(&m, &c, 4).expect("init");
        ev.evaluate_unchecked(&cfg);
        let before = ev.memo_len();
        // Flip recompute in the last stage: stages 0..p-2 are unchanged
        // (content, device start, boundary context all identical).
        let mut touched = cfg.clone();
        for op in &mut touched.stages[3].ops {
            op.recompute = true;
        }
        ev.evaluate_unchecked(&touched);
        // Only the touched stage gains a memo entry.
        assert_eq!(ev.memo_len(), before + 1);
        // And the result still matches a from-scratch evaluation.
        let pm = PerfModel::new(&m, &c, &db);
        assert_bit_identical(
            &pm.evaluate_unchecked(&touched),
            &ev.evaluate_unchecked(&touched),
        );
    }

    #[test]
    fn predecessor_dp_change_invalidates_successor() {
        // Changing the trailing dp of stage 0 resizes the boundary
        // transfer into stage 1, so stage 1's cached estimate must not be
        // reused.
        let (m, c) = setup();
        let n = m.len();
        // Both variants use 2 GPUs per stage, so stage 1's content and
        // device start are identical — only the inbound boundary differs.
        let mk = |para0: OpParallel| ParallelConfig {
            stages: vec![
                StageConfig::uniform(0, n / 2, para0),
                StageConfig::uniform(n / 2, n, OpParallel::data_parallel(2)),
            ],
            microbatch: 8,
        };
        let db = ProfileDb::build(&m, &c);
        let ev = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        let pm = PerfModel::new(&m, &c, &db);
        let a = mk(OpParallel::data_parallel(2));
        let b = mk(OpParallel {
            tp: 2,
            dp: 1,
            dim_index: 0,
            recompute: false,
            zero: false,
        });
        ev.evaluate_unchecked(&a);
        assert_bit_identical(&pm.evaluate_unchecked(&b), &ev.evaluate_unchecked(&b));
    }

    #[test]
    fn clear_resets_memo() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let ev = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        ev.evaluate_unchecked(&balanced_init(&m, &c, 2).expect("init"));
        assert!(ev.memo_len() > 0);
        ev.clear();
        assert_eq!(ev.memo_len(), 0);
    }

    #[test]
    fn memo_export_import_round_trips() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let ev = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        ev.evaluate_unchecked(&balanced_init(&m, &c, 2).expect("init"));
        ev.evaluate_unchecked(&balanced_init(&m, &c, 4).expect("init"));
        let exported = ev.export_memo();
        assert_eq!(exported.len(), ev.memo_len());
        // Deterministic order: exporting twice yields identical sequences.
        assert_eq!(exported, ev.export_memo());
        let other = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        other.import_memo(exported.clone());
        assert_eq!(other.memo_len(), exported.len());
        assert_eq!(other.export_memo(), exported);
        // Imported entries actually serve lookups: re-evaluating a seen
        // configuration adds no new entries.
        other.evaluate_unchecked(&balanced_init(&m, &c, 2).expect("init"));
        assert_eq!(other.memo_len(), exported.len());
    }

    #[test]
    fn absorbed_traces_reproduce_the_serial_memo_and_estimates() {
        // A "worker" evaluates a sequence of configurations and captures
        // traces; a fresh "canonical" evaluator absorbs them in order.
        // Its memo table must end up byte-for-byte where a canonical
        // evaluator that evaluated the same sequence directly would be.
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfgs = [
            balanced_init(&m, &c, 2).expect("init"),
            balanced_init(&m, &c, 4).expect("init"),
            balanced_init(&m, &c, 2).expect("init"), // repeat: all-hit eval
        ];

        let worker = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        let direct = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        let canonical = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        for cfg in &cfgs {
            let (west, trace) = worker.evaluate_traced(cfg);
            let dest = direct.evaluate_unchecked(cfg);
            assert_eq!(west.iteration_time.to_bits(), dest.iteration_time.to_bits());
            assert_eq!(trace.entries.len(), cfg.num_stages());
            canonical.absorb_trace(&trace);
        }
        assert_eq!(canonical.export_memo(), direct.export_memo());
    }

    #[test]
    fn tracing_evaluator_captures_every_evaluation_in_order() {
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let ev = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        let tev = TracingEvaluator::new(&ev);
        let a = balanced_init(&m, &c, 2).expect("init");
        let b = balanced_init(&m, &c, 4).expect("init");
        tev.evaluate_unchecked(&a);
        tev.evaluate_unchecked(&b);
        let traces = tev.take_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].entries.len(), a.num_stages());
        assert_eq!(traces[1].entries.len(), b.num_stages());
        assert!(tev.take_traces().is_empty(), "take drains the buffer");
    }

    #[test]
    fn trait_object_free_generics_work_for_both() {
        fn score<E: Evaluator>(ev: &E, cfg: &ParallelConfig) -> f64 {
            ev.evaluate_unchecked(cfg).score()
        }
        let (m, c) = setup();
        let db = ProfileDb::build(&m, &c);
        let cfg = balanced_init(&m, &c, 2).expect("init");
        let pm = PerfModel::new(&m, &c, &db);
        let ev = CachedEvaluator::new(PerfModel::new(&m, &c, &db));
        assert_eq!(score(&pm, &cfg).to_bits(), score(&ev, &cfg).to_bits());
    }
}
