//! Shadow lock-order tracking for deadlock analysis.
//!
//! [`TrackedMutex`] and [`TrackedCondvar`] are drop-in wrappers around
//! `std::sync::Mutex` / `Condvar` that record, per thread, which lock
//! *classes* (named at construction) are held whenever a new one is
//! acquired. Every held→acquired pair becomes an edge in a process-wide
//! acquisition graph ([`global`]); a cycle in that graph is a potential
//! deadlock — two threads could interleave the same pairs in opposite
//! orders — even if no run ever actually deadlocked.
//!
//! Recording costs one atomic load when disabled. It is on by default
//! only under the `lock-order` cargo feature (enabled transitively by
//! `aceso-core/debug-invariants`, so the CI invariant-checking test pass
//! records across the whole suite); [`set_recording`] flips it at
//! runtime, which is how `aceso audit` drives its lock-order analyzer in
//! plain builds.
//!
//! A [`TrackedMutex`] built with [`TrackedMutex::with_sink`] records
//! into a private [`LockGraph`] *instead of* the global one. Mutation
//! harnesses use this to inject a deliberately inverted lock pair and
//! observe the cycle without poisoning the process-wide graph that
//! other tests in the same binary assert is clean.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Whether acquisitions are being recorded. Defaults on under the
/// `lock-order` feature so a whole test suite can be swept without
/// per-call opt-in.
static RECORDING: AtomicBool = AtomicBool::new(cfg!(feature = "lock-order"));

/// Enables or disables acquisition recording process-wide.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::SeqCst);
}

/// True when acquisitions are currently being recorded.
pub fn recording() -> bool {
    RECORDING.load(Ordering::SeqCst)
}

thread_local! {
    /// Lock classes currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn push_held(name: &'static str) {
    HELD.with(|h| h.borrow_mut().push(name));
}

fn pop_held(name: &'static str) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(i) = held.iter().rposition(|n| *n == name) {
            held.remove(i);
        }
    });
}

#[derive(Default)]
struct GraphInner {
    /// Directed held→acquired edges between lock classes.
    edges: BTreeSet<(&'static str, &'static str)>,
    /// Total recorded acquisitions per lock class.
    acquisitions: BTreeMap<&'static str, u64>,
}

/// A directed graph of observed lock-acquisition orders.
///
/// Nodes are lock-class names, edges mean "a thread acquired the target
/// while holding the source". An acyclic graph proves a consistent
/// global acquisition order over everything observed; a cycle is a
/// potential deadlock.
#[derive(Default)]
pub struct LockGraph {
    inner: Mutex<GraphInner>,
}

impl LockGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, GraphInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one acquisition of `name` while `held` were already held.
    pub fn record(&self, held: &[&'static str], name: &'static str) {
        let mut g = self.lock_inner();
        for h in held {
            g.edges.insert((h, name));
        }
        *g.acquisitions.entry(name).or_insert(0) += 1;
    }

    /// Copies every edge and acquisition count of `other` into `self`.
    /// Mutation harnesses seed a private sink from a snapshot of the
    /// global graph so the injected inversion is judged against the
    /// orders the real code actually uses.
    pub fn absorb(&self, other: &LockGraph) {
        let (edges, acqs) = {
            let o = other.lock_inner();
            (o.edges.clone(), o.acquisitions.clone())
        };
        let mut g = self.lock_inner();
        g.edges.extend(edges);
        for (k, v) in acqs {
            *g.acquisitions.entry(k).or_insert(0) += v;
        }
    }

    /// All recorded held→acquired edges, sorted.
    pub fn edges(&self) -> Vec<(&'static str, &'static str)> {
        self.lock_inner().edges.iter().copied().collect()
    }

    /// Total recorded acquisitions per lock class, sorted by name.
    pub fn acquisitions(&self) -> Vec<(&'static str, u64)> {
        self.lock_inner()
            .acquisitions
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Discards every recorded edge and count.
    pub fn clear(&self) {
        let mut g = self.lock_inner();
        g.edges.clear();
        g.acquisitions.clear();
    }

    /// Finds a cycle in the acquisition graph, if any, returned as the
    /// class names along the cycle (first == last). `None` proves a
    /// consistent global lock order exists for everything recorded.
    pub fn cycle(&self) -> Option<Vec<&'static str>> {
        let edges = self.edges();
        let mut adj: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
        for (a, b) in &edges {
            adj.entry(a).or_default().push(b);
        }
        // Iterative DFS with three colours: 0 unvisited, 1 on stack, 2 done.
        let mut colour: BTreeMap<&'static str, u8> = BTreeMap::new();
        let nodes: Vec<&'static str> = adj.keys().copied().collect();
        for start in nodes {
            if colour.get(start).copied().unwrap_or(0) != 0 {
                continue;
            }
            // Stack of (node, next child index); path mirrors the stack.
            let mut stack: Vec<(&'static str, usize)> = vec![(start, 0)];
            colour.insert(start, 1);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match colour.get(child).copied().unwrap_or(0) {
                        0 => {
                            colour.insert(child, 1);
                            stack.push((child, 0));
                        }
                        1 => {
                            // Found a back edge: the cycle is the stack
                            // suffix from `child` plus the closing hop.
                            let from = stack.iter().position(|(n, _)| *n == child).unwrap_or(0);
                            let mut path: Vec<&'static str> =
                                stack[from..].iter().map(|(n, _)| *n).collect();
                            path.push(child);
                            return Some(path);
                        }
                        _ => {}
                    }
                } else {
                    colour.insert(node, 2);
                    stack.pop();
                }
            }
        }
        None
    }
}

/// The process-wide acquisition graph every sink-less [`TrackedMutex`]
/// records into while [`recording`] is on.
pub fn global() -> &'static LockGraph {
    static GLOBAL: OnceLock<LockGraph> = OnceLock::new();
    GLOBAL.get_or_init(LockGraph::new)
}

/// A named mutex that records its acquisition order.
pub struct TrackedMutex<T> {
    name: &'static str,
    sink: Option<Arc<LockGraph>>,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// A tracked mutex recording into the [`global`] graph (while
    /// recording is enabled).
    pub fn new(name: &'static str, value: T) -> Self {
        Self {
            name,
            sink: None,
            inner: Mutex::new(value),
        }
    }

    /// A tracked mutex recording into `sink` only — always, regardless
    /// of the global recording flag — and never into the global graph.
    pub fn with_sink(name: &'static str, value: T, sink: Arc<LockGraph>) -> Self {
        Self {
            name,
            sink: Some(sink),
            inner: Mutex::new(value),
        }
    }

    /// The lock-class name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn record_acquire(&self) {
        let graph: &LockGraph = match &self.sink {
            Some(s) => s,
            None if recording() => global(),
            None => return,
        };
        HELD.with(|h| graph.record(&h.borrow(), self.name));
        push_held(self.name);
    }

    /// Whether this acquisition is visible to a graph (and so pushed on
    /// the held stack).
    fn tracked(&self) -> bool {
        self.sink.is_some() || recording()
    }

    /// Locks, mirroring `std::sync::Mutex::lock`'s poison semantics so
    /// callers keep their `unwrap_or_else(PoisonError::into_inner)`
    /// idiom.
    pub fn lock(&self) -> LockResult<TrackedGuard<'_, T>> {
        let tracked = self.tracked();
        if tracked {
            // Record the edge before blocking: a would-be deadlock still
            // leaves its evidence in the graph.
            self.record_acquire();
        }
        let name = if tracked { Some(self.name) } else { None };
        match self.inner.lock() {
            Ok(g) => Ok(TrackedGuard {
                name,
                guard: Some(g),
            }),
            Err(p) => Err(PoisonError::new(TrackedGuard {
                name,
                guard: Some(p.into_inner()),
            })),
        }
    }
}

/// Guard returned by [`TrackedMutex::lock`]; releases the held-stack
/// entry on drop.
pub struct TrackedGuard<'a, T> {
    /// The class name to pop on drop; `None` when the acquisition was
    /// not recorded (so an untracked lock never unbalances the stack).
    name: Option<&'static str>,
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.is_some() {
            if let Some(name) = self.name {
                pop_held(name);
            }
        }
    }
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A condvar aware of [`TrackedGuard`]s: waiting releases the held-stack
/// entry (the lock really is released while blocked) and re-records the
/// acquisition when the wait returns.
#[derive(Default)]
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// A new condvar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits a guard into its raw `MutexGuard`, popping the held stack.
    fn release<'a, T>(mut guard: TrackedGuard<'a, T>) -> (Option<&'static str>, MutexGuard<'a, T>) {
        let name = guard.name;
        let raw = guard.guard.take().expect("guard present");
        if let Some(n) = name {
            pop_held(n);
        }
        (name, raw)
    }

    /// Re-wraps a raw guard after the wait, restoring the held-stack
    /// entry (the reacquisition is not a fresh `lock()` call, so it is
    /// not counted as a new graph acquisition).
    fn reacquire<'a, T>(name: Option<&'static str>, raw: MutexGuard<'a, T>) -> TrackedGuard<'a, T> {
        if let Some(n) = name {
            push_held(n);
        }
        TrackedGuard {
            name,
            guard: Some(raw),
        }
    }

    /// Blocks until notified, like `Condvar::wait`.
    pub fn wait<'a, T>(&self, guard: TrackedGuard<'a, T>) -> LockResult<TrackedGuard<'a, T>> {
        let (name, raw) = Self::release(guard);
        match self.inner.wait(raw) {
            Ok(g) => Ok(Self::reacquire(name, g)),
            Err(p) => Err(PoisonError::new(Self::reacquire(name, p.into_inner()))),
        }
    }

    /// Blocks until notified or `dur` elapses, like
    /// `Condvar::wait_timeout` minus the timed-out flag (callers re-check
    /// their predicate anyway).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: TrackedGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<TrackedGuard<'a, T>> {
        let (name, raw) = Self::release(guard);
        match self.inner.wait_timeout(raw, dur) {
            Ok((g, _)) => Ok(Self::reacquire(name, g)),
            Err(p) => {
                let (g, _) = p.into_inner();
                Err(PoisonError::new(Self::reacquire(name, g)))
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untracked_locks_record_nothing() {
        let sink = Arc::new(LockGraph::new());
        // No sink and recording off: nothing lands in the global graph
        // under this class name.
        let m = TrackedMutex::new("lockorder-test-untracked", 1u32);
        if !recording() {
            let _g = m.lock().unwrap();
            assert!(global()
                .acquisitions()
                .iter()
                .all(|(n, _)| *n != "lockorder-test-untracked"));
        }
        drop(sink);
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let sink = Arc::new(LockGraph::new());
        let a = TrackedMutex::with_sink("lockorder-test-a", 0u32, Arc::clone(&sink));
        let b = TrackedMutex::with_sink("lockorder-test-b", 0u32, Arc::clone(&sink));
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        assert!(sink
            .edges()
            .contains(&("lockorder-test-a", "lockorder-test-b")));
        assert!(sink.cycle().is_none());
    }

    #[test]
    fn inverted_orders_form_a_cycle() {
        let sink = Arc::new(LockGraph::new());
        let a = TrackedMutex::with_sink("lockorder-test-x", 0u32, Arc::clone(&sink));
        let b = TrackedMutex::with_sink("lockorder-test-y", 0u32, Arc::clone(&sink));
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        let cycle = sink.cycle().expect("inverted pair must cycle");
        assert!(cycle.len() >= 3, "cycle path closes on itself: {cycle:?}");
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn condvar_wait_releases_the_held_entry() {
        let sink = Arc::new(LockGraph::new());
        let m = Arc::new(TrackedMutex::with_sink(
            "lockorder-test-cv",
            false,
            Arc::clone(&sink),
        ));
        let cv = Arc::new(TrackedCondvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            while !*g {
                g = cv2.wait(g).unwrap();
            }
        });
        // Let the waiter block, then flip the flag.
        std::thread::sleep(Duration::from_millis(20));
        *m.lock().unwrap() = true;
        cv.notify_all();
        waiter.join().expect("waiter joins");
        // Two fresh acquisitions: the waiter's initial lock and ours
        // (the post-wait reacquisition restores the held stack but is
        // not a new lock() call).
        let acqs = sink.acquisitions();
        let n = acqs
            .iter()
            .find(|(n, _)| *n == "lockorder-test-cv")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert!(n >= 2, "expected >=2 recorded acquisitions, got {n}");
        assert!(sink.cycle().is_none());
    }

    #[test]
    fn absorb_merges_edges_and_counts() {
        let a = LockGraph::new();
        let b = LockGraph::new();
        a.record(&["p"], "q");
        b.record(&["q"], "p");
        a.absorb(&b);
        assert!(a.cycle().is_some());
        assert_eq!(a.acquisitions().len(), 2);
    }
}
