//! Injectable filesystem side-effects: the seam the chaos engine uses.
//!
//! Every durable write the system performs — store entries, checkpoint
//! spools, retention sweeps, CLI checkpoints — goes through the [`Fs`]
//! trait instead of calling `std::fs` directly. Production code uses
//! [`RealFs`], a zero-cost passthrough whose behaviour is byte-identical
//! to the direct calls it replaced (INV-CHAOS-REALFS). Tests and the
//! chaos engine (`crates/chaos`, `docs/RELIABILITY.md`) substitute
//! [`ChaosFs`], which consults a seeded [`FaultSchedule`] and injects
//! one typed fault per scheduled operation: EIO, ENOSPC, a short write
//! of N bytes, a failed rename, or a simulated crash-point that freezes
//! every subsequent mutation (the writes a real crash would have lost).
//!
//! Determinism contract (INV-CHAOS-DETERMINISM): a [`ChaosFs`] numbers
//! faultable operations 0, 1, 2, … in call order and injects exactly
//! the faults its schedule maps to those ordinals — so a fixed workload
//! over a fixed schedule reproduces the same faults, which is what
//! makes failing schedules replayable and shrinkable.

use crate::json::{JsonError, Value};
use crate::SplitMix64;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::SystemTime;

/// Metadata of one directory entry returned by [`Fs::scan_dir`].
#[derive(Debug, Clone)]
pub struct ScanEntry {
    /// Absolute path of the entry.
    pub path: PathBuf,
    /// Last-modified time (`UNIX_EPOCH` when unavailable).
    pub modified: SystemTime,
    /// Size in bytes.
    pub len: u64,
    /// Whether the entry is a regular file.
    pub is_file: bool,
}

/// The filesystem operations the system's durable paths need.
///
/// Implementations must be shareable across threads; the daemon clones
/// one `Arc<dyn Fs>` into every subsystem that touches disk.
pub trait Fs: Send + Sync + std::fmt::Debug {
    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes `bytes` to `path`, creating or truncating it.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Renames `from` to `to` (the atomic-publish step).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Lists `dir` (non-recursively) with per-entry metadata.
    fn scan_dir(&self, dir: &Path) -> io::Result<Vec<ScanEntry>>;
    /// Flushes any buffered state for `path` to durable storage.
    fn sync(&self, path: &Path) -> io::Result<()>;
}

/// Passthrough to `std::fs` — the production implementation. Behaviour
/// is byte-identical to calling `std::fs` directly (INV-CHAOS-REALFS).
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl Fs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn scan_dir(&self, dir: &Path) -> io::Result<Vec<ScanEntry>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let Ok(entry) = entry else { continue };
            let Ok(meta) = entry.metadata() else { continue };
            out.push(ScanEntry {
                path: entry.path(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                len: meta.len(),
                is_file: meta.is_file(),
            });
        }
        Ok(out)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }
}

/// Writes `bytes` to `tmp`, then renames it over `path` — the shared
/// atomic-publish idiom (INV-STORE-ATOMIC and the spool contract). On a
/// failed rename the temp file is best-effort removed so it cannot be
/// mistaken for a finished artifact.
pub fn write_atomic(fs: &dyn Fs, path: &Path, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    fs.write(tmp, bytes)?;
    match fs.rename(tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs.remove_file(tmp);
            Err(e)
        }
    }
}

/// One injectable fault kind (the per-op outcomes of a
/// [`FaultSchedule`]; `Ok` is the implicit default for unscheduled ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an injected I/O error.
    Eio,
    /// The operation fails with an injected no-space error.
    Enospc,
    /// A write persists only its first `N` bytes, then fails — a torn
    /// file at the written path.
    ShortWrite(u64),
    /// A rename fails (the publish step of an atomic write); non-rename
    /// ops scheduled with this kind fail like [`FaultKind::Eio`].
    RenameFail,
    /// Simulated crash-point: this and every later mutating operation
    /// silently never reaches disk (what a real crash would lose), and
    /// [`ChaosFs::crashed`] turns true so a driver can restart the
    /// "process".
    Crash,
}

impl FaultKind {
    /// Stable snake_case name, used in traces and the
    /// `chaos_faults_injected` counter family.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Eio => "eio",
            FaultKind::Enospc => "enospc",
            FaultKind::ShortWrite(_) => "short_write",
            FaultKind::RenameFail => "rename_fail",
            FaultKind::Crash => "crash",
        }
    }
}

/// One scheduled fault: inject `kind` at faultable operation `op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Ordinal of the faultable filesystem operation (0-based, in the
    /// workload's call order).
    pub op: u64,
    /// The fault to inject there.
    pub kind: FaultKind,
}

/// A deterministic per-operation fault plan for one [`ChaosFs`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Scheduled faults, sorted by [`FaultEvent::op`].
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule: every operation succeeds, and the wrapped
    /// [`ChaosFs`] behaves exactly like [`RealFs`] (INV-CHAOS-REALFS).
    pub fn none() -> Self {
        Self::default()
    }

    /// Generates a schedule from a seed: up to `max_faults` faults
    /// spread over the first `horizon` faultable operations, with kinds
    /// and positions drawn from a [`SplitMix64`]. The same seed always
    /// produces the same schedule.
    pub fn from_seed(seed: u64, horizon: u64, max_faults: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5FA0_17ED);
        let mut by_op: BTreeMap<u64, FaultKind> = BTreeMap::new();
        let n = if max_faults == 0 {
            0
        } else {
            (rng.next_u64() as usize) % (max_faults + 1)
        };
        for _ in 0..n {
            let op = rng.next_u64() % horizon.max(1);
            let kind = match rng.next_u64() % 5 {
                0 => FaultKind::Eio,
                1 => FaultKind::Enospc,
                2 => FaultKind::ShortWrite(rng.next_u64() % 64),
                3 => FaultKind::RenameFail,
                _ => FaultKind::Crash,
            };
            by_op.entry(op).or_insert(kind);
        }
        Self {
            events: by_op
                .into_iter()
                .map(|(op, kind)| FaultEvent { op, kind })
                .collect(),
        }
    }

    /// Serialises the schedule for a replayable trace.
    pub fn to_json_value(&self) -> Value {
        Value::Array(
            self.events
                .iter()
                .map(|e| {
                    let mut fields = vec![
                        ("op".to_string(), Value::UInt(e.op)),
                        ("kind".to_string(), Value::Str(e.kind.name().to_string())),
                    ];
                    if let FaultKind::ShortWrite(n) = e.kind {
                        fields.push(("bytes".to_string(), Value::UInt(n)));
                    }
                    Value::Object(fields)
                })
                .collect(),
        )
    }

    /// Restores a schedule from [`FaultSchedule::to_json_value`] output.
    pub fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let mut events = Vec::new();
        for e in v.as_array()? {
            let op = e.field("op")?.as_u64()?;
            let kind = match e.field("kind")?.as_str()? {
                "eio" => FaultKind::Eio,
                "enospc" => FaultKind::Enospc,
                "short_write" => FaultKind::ShortWrite(e.field("bytes")?.as_u64()?),
                "rename_fail" => FaultKind::RenameFail,
                "crash" => FaultKind::Crash,
                other => {
                    return Err(JsonError::shape(format!("unknown fault kind `{other}`")));
                }
            };
            events.push(FaultEvent { op, kind });
        }
        events.sort_by_key(|e| e.op);
        Ok(Self { events })
    }
}

/// One fault a [`ChaosFs`] actually injected (schedules may name
/// ordinals the workload never reaches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Ordinal of the operation the fault landed on.
    pub op: u64,
    /// The injected fault.
    pub kind: FaultKind,
    /// Path of the operation's target.
    pub path: PathBuf,
}

#[derive(Debug, Default)]
struct ChaosState {
    by_op: BTreeMap<u64, FaultKind>,
    next_op: u64,
    frozen: bool,
    injected: Vec<InjectedFault>,
}

/// A filesystem that injects the faults of a [`FaultSchedule`].
///
/// Wraps [`RealFs`]: unscheduled operations pass straight through, so a
/// `ChaosFs` with an empty schedule is byte-identical to `RealFs`
/// (INV-CHAOS-REALFS). Reads stay live after a [`FaultKind::Crash`] —
/// the disk's contents survive a crash, the in-flight writes do not.
#[derive(Debug)]
pub struct ChaosFs {
    inner: RealFs,
    state: Mutex<ChaosState>,
}

impl ChaosFs {
    /// A chaos filesystem driven by `schedule`.
    pub fn new(schedule: &FaultSchedule) -> Self {
        Self {
            inner: RealFs,
            state: Mutex::new(ChaosState {
                by_op: schedule.events.iter().map(|e| (e.op, e.kind)).collect(),
                ..ChaosState::default()
            }),
        }
    }

    /// Whether a [`FaultKind::Crash`] point has been reached (all later
    /// mutations are frozen; the driver should treat the process as
    /// dead and restart it on a fresh `Fs`).
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("chaos state").frozen
    }

    /// Every fault injected so far, in injection order.
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.state.lock().expect("chaos state").injected.clone()
    }

    /// How many faultable operations the workload has performed.
    pub fn ops_used(&self) -> u64 {
        self.state.lock().expect("chaos state").next_op
    }

    /// Takes the next operation ordinal and the fault scheduled for it,
    /// recording the injection. Returns `(fault, frozen)`.
    fn step(&self, path: &Path) -> (Option<FaultKind>, bool) {
        let mut state = self.state.lock().expect("chaos state");
        let op = state.next_op;
        state.next_op += 1;
        let fault = state.by_op.get(&op).copied();
        if let Some(kind) = fault {
            state.injected.push(InjectedFault {
                op,
                kind,
                path: path.to_path_buf(),
            });
            if kind == FaultKind::Crash {
                state.frozen = true;
            }
        }
        (fault, state.frozen)
    }
}

fn injected_err(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl Fs for ChaosFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // Reads survive a crash point (the disk is intact); only a
        // directly scheduled fault can fail them.
        match self.step(path).0 {
            None | Some(FaultKind::Crash) => self.inner.read(path),
            Some(FaultKind::Enospc) => Err(injected_err("ENOSPC")),
            Some(_) => Err(injected_err("EIO")),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let (fault, frozen) = self.step(path);
        match fault {
            Some(FaultKind::Eio) | Some(FaultKind::RenameFail) => Err(injected_err("EIO")),
            Some(FaultKind::Enospc) => Err(injected_err("ENOSPC")),
            Some(FaultKind::ShortWrite(n)) => {
                let cut = (n as usize).min(bytes.len());
                if !frozen {
                    // The torn prefix really lands on disk — exactly
                    // what a crash mid-write leaves behind.
                    self.inner.write(path, &bytes[..cut])?;
                }
                Err(injected_err("short write"))
            }
            // Crash (now or earlier): the write silently never happens.
            Some(FaultKind::Crash) => Ok(()),
            None if frozen => Ok(()),
            None => self.inner.write(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (fault, frozen) = self.step(to);
        match fault {
            Some(FaultKind::RenameFail) | Some(FaultKind::Eio) => Err(injected_err("EIO")),
            Some(FaultKind::Enospc) => Err(injected_err("ENOSPC")),
            Some(FaultKind::ShortWrite(_)) => Err(injected_err("EIO")),
            Some(FaultKind::Crash) => Ok(()),
            None if frozen => Ok(()),
            None => self.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let (fault, frozen) = self.step(path);
        match fault {
            Some(FaultKind::Enospc) => Err(injected_err("ENOSPC")),
            Some(FaultKind::Crash) => Ok(()),
            Some(_) => Err(injected_err("EIO")),
            None if frozen => Ok(()),
            None => self.inner.remove_file(path),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Directory creation is not a scheduled op: chaos scenarios
        // target entry/spool lifecycles, and a missing root directory
        // would fail every run identically instead of probing recovery.
        self.inner.create_dir_all(dir)
    }

    fn scan_dir(&self, dir: &Path) -> io::Result<Vec<ScanEntry>> {
        // Scans are read-only and best-effort at every call site.
        self.inner.scan_dir(dir)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let (fault, frozen) = self.step(path);
        match fault {
            Some(FaultKind::Enospc) => Err(injected_err("ENOSPC")),
            Some(FaultKind::Crash) => Ok(()),
            Some(_) => Err(injected_err("EIO")),
            None if frozen => Ok(()),
            None => self.inner.sync(path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aceso-fsio-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn empty_schedule_is_a_passthrough() {
        let dir = tmpdir("passthrough");
        let chaos = ChaosFs::new(&FaultSchedule::none());
        let path = dir.join("a.txt");
        chaos.write(&path, b"hello").expect("write");
        assert_eq!(chaos.read(&path).expect("read"), b"hello");
        chaos.rename(&path, &dir.join("b.txt")).expect("rename");
        assert_eq!(
            std::fs::read(dir.join("b.txt")).expect("real read"),
            b"hello"
        );
        assert!(!chaos.crashed());
        assert!(chaos.injected().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_leaves_a_torn_prefix() {
        let dir = tmpdir("short");
        let chaos = ChaosFs::new(&FaultSchedule {
            events: vec![FaultEvent {
                op: 0,
                kind: FaultKind::ShortWrite(3),
            }],
        });
        let path = dir.join("torn.txt");
        assert!(chaos.write(&path, b"hello world").is_err());
        assert_eq!(std::fs::read(&path).expect("prefix on disk"), b"hel");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_point_freezes_every_later_mutation_but_not_reads() {
        let dir = tmpdir("crash");
        let chaos = ChaosFs::new(&FaultSchedule {
            events: vec![FaultEvent {
                op: 1,
                kind: FaultKind::Crash,
            }],
        });
        let before = dir.join("before.txt");
        chaos.write(&before, b"durable").expect("pre-crash write");
        let after = dir.join("after.txt");
        // The crash-point op and everything later silently never lands.
        chaos
            .write(&after, b"lost")
            .expect("frozen writes report ok");
        chaos.write(&dir.join("also.txt"), b"lost").expect("frozen");
        assert!(chaos.crashed());
        assert!(!after.exists());
        assert_eq!(chaos.read(&before).expect("reads stay live"), b"durable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedules_are_deterministic_and_round_trip_as_json() {
        let a = FaultSchedule::from_seed(42, 32, 6);
        let b = FaultSchedule::from_seed(42, 32, 6);
        assert_eq!(a, b);
        let back = FaultSchedule::from_json_value(&a.to_json_value()).expect("round trip");
        assert_eq!(back, a);
        // Different seeds eventually differ.
        assert!((0..64).any(|s| FaultSchedule::from_seed(s, 32, 6) != a));
    }

    #[test]
    fn injected_faults_are_logged_with_ordinals() {
        let dir = tmpdir("log");
        let chaos = ChaosFs::new(&FaultSchedule {
            events: vec![FaultEvent {
                op: 1,
                kind: FaultKind::Eio,
            }],
        });
        chaos.write(&dir.join("ok.txt"), b"x").expect("op 0 clean");
        assert!(chaos.write(&dir.join("bad.txt"), b"y").is_err());
        let log = chaos.injected();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].op, 1);
        assert_eq!(log[0].kind, FaultKind::Eio);
        assert_eq!(chaos.ops_used(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_cleans_its_temp_on_rename_failure() {
        let dir = tmpdir("atomic");
        let chaos = ChaosFs::new(&FaultSchedule {
            events: vec![FaultEvent {
                op: 1,
                kind: FaultKind::RenameFail,
            }],
        });
        let path = dir.join("entry.dat");
        let tmp = dir.join("entry.dat.tmp");
        assert!(write_atomic(&chaos, &path, &tmp, b"payload").is_err());
        assert!(!path.exists(), "failed publish must not surface the entry");
        assert!(!tmp.exists(), "temp file is cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
