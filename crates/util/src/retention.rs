//! Shared file-retention policies.
//!
//! Two daemon-side subsystems shed old files: the spool directory drops
//! request checkpoints whose owners never came back (TTL), and the
//! profile store evicts least-recently-used entries past a byte budget
//! (LRU). Both reduce to the same two steps — scan a directory for
//! files with a given suffix, then pick victims by modification time —
//! so both live here rather than growing two divergent copies.
//!
//! Everything is best-effort: an unreadable directory or a file that
//! vanishes mid-scan (another daemon swept it first) is skipped, never
//! an error. Retention is hygiene, not correctness — but hygiene
//! failures are no longer silent: [`remove_all_with`] counts removals
//! that failed for any reason other than the file already being gone,
//! and callers surface that count through the `retention_sweep_errors`
//! counter and a `sweep_degraded` event (INV-CHAOS-SWEEP).
//!
//! All filesystem access goes through [`crate::fsio::Fs`] so the chaos
//! engine can inject faults here; the suffix-less entry points delegate
//! to the `_with` variants over [`RealFs`].

use crate::fsio::{Fs, RealFs};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// One candidate file from a retention scan.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Absolute path of the file.
    pub path: PathBuf,
    /// Last-modified time (the retention clock).
    pub modified: SystemTime,
    /// Size in bytes.
    pub len: u64,
}

/// Scans `dir` (non-recursively) for regular files whose name ends with
/// any of `suffixes`, returning their metadata sorted oldest-first.
///
/// Missing or unreadable directories and entries yield an empty/partial
/// list rather than an error — a concurrent sweeper may be removing
/// entries while we walk.
pub fn scan_dir(dir: &Path, suffixes: &[&str]) -> Vec<FileMeta> {
    scan_dir_with(&RealFs, dir, suffixes)
}

/// [`scan_dir`] over an injectable filesystem.
pub fn scan_dir_with(fs: &dyn Fs, dir: &Path, suffixes: &[&str]) -> Vec<FileMeta> {
    let Ok(entries) = fs.scan_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries {
        let Some(name) = entry.path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !suffixes.iter().any(|s| name.ends_with(s)) {
            continue;
        }
        if !entry.is_file {
            continue;
        }
        out.push(FileMeta {
            path: entry.path,
            modified: entry.modified,
            len: entry.len,
        });
    }
    out.sort_by(|a, b| a.modified.cmp(&b.modified).then(a.path.cmp(&b.path)));
    out
}

/// TTL policy: files from `files` whose age (relative to `now`) exceeds
/// `ttl`. A file with a modification time in the future counts as age
/// zero (clock skew, never expired).
pub fn expired(files: &[FileMeta], ttl: Duration, now: SystemTime) -> Vec<&FileMeta> {
    files
        .iter()
        .filter(|f| {
            now.duration_since(f.modified)
                .map(|age| age > ttl)
                .unwrap_or(false)
        })
        .collect()
}

/// Byte-budget LRU policy: the oldest files from `files` (which must be
/// sorted oldest-first, as [`scan_dir`] returns) whose removal brings
/// the total size within `budget`. Files whose path is in `keep` are
/// never selected and always count toward the total.
pub fn over_budget_lru<'a>(
    files: &'a [FileMeta],
    budget: u64,
    keep: &[&Path],
) -> Vec<&'a FileMeta> {
    let mut total: u64 = files.iter().map(|f| f.len).sum();
    let mut victims = Vec::new();
    for f in files {
        if total <= budget {
            break;
        }
        if keep.contains(&f.path.as_path()) {
            continue;
        }
        total = total.saturating_sub(f.len);
        victims.push(f);
    }
    victims
}

/// Outcome of a retention sweep: what was removed and what failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Files actually removed.
    pub removed: usize,
    /// Removals that failed for a reason other than the file already
    /// being gone. These feed the `retention_sweep_errors` counter and
    /// a `sweep_degraded` event instead of being dropped on the floor
    /// (INV-CHAOS-SWEEP).
    pub errors: usize,
}

/// Removes every file in `victims`, returning how many removals
/// succeeded. A file another daemon already removed is not counted.
pub fn remove_all(victims: &[&FileMeta]) -> usize {
    remove_all_with(&RealFs, victims).removed
}

/// [`remove_all`] over an injectable filesystem, with failed removals
/// counted instead of swallowed. A `NotFound` (another daemon swept
/// the file first) is neither a removal nor an error.
pub fn remove_all_with(fs: &dyn Fs, victims: &[&FileMeta]) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    for f in victims {
        match fs.remove_file(&f.path) {
            Ok(()) => outcome.removed += 1,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(_) => outcome.errors += 1,
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aceso-retention-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn touch(dir: &Path, name: &str, len: usize, age: Duration) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, vec![b'x'; len]).expect("write");
        // Ages are simulated by passing `now` forward instead of mutating
        // mtimes (std cannot set them); this helper just records intent.
        let _ = age;
        path
    }

    #[test]
    fn scan_filters_by_suffix_and_sorts() {
        let dir = tmpdir("scan");
        touch(&dir, "a.ckpt", 10, Duration::ZERO);
        touch(&dir, "b.adb", 20, Duration::ZERO);
        touch(&dir, "c.tmp", 30, Duration::ZERO);
        let files = scan_dir(&dir, &[".ckpt", ".adb"]);
        let names: Vec<_> = files
            .iter()
            .map(|f| f.path.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(files.len(), 2);
        assert!(names.contains(&"a.ckpt".to_string()));
        assert!(names.contains(&"b.adb".to_string()));
        assert!(files.windows(2).all(|w| w[0].modified <= w[1].modified));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_of_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("aceso-retention-nonexistent-dir");
        assert!(scan_dir(&dir, &[".ckpt"]).is_empty());
    }

    #[test]
    fn ttl_policy_selects_only_old_files() {
        let dir = tmpdir("ttl");
        touch(&dir, "old.ckpt", 1, Duration::ZERO);
        let files = scan_dir(&dir, &[".ckpt"]);
        // With `now` far in the future everything is expired …
        let future = SystemTime::now() + Duration::from_secs(3600);
        assert_eq!(expired(&files, Duration::from_secs(60), future).len(), 1);
        // … with `now` at the modification time nothing is.
        assert!(expired(&files, Duration::from_secs(60), files[0].modified).is_empty());
        // Future mtimes (clock skew) never expire.
        let past = SystemTime::UNIX_EPOCH;
        assert!(expired(&files, Duration::ZERO, past).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_policy_evicts_oldest_until_within_budget() {
        let dir = tmpdir("lru");
        // Equal mtimes tie-break on path, so names give a stable order.
        let a = touch(&dir, "a.adb", 100, Duration::ZERO);
        touch(&dir, "b.adb", 100, Duration::ZERO);
        touch(&dir, "c.adb", 100, Duration::ZERO);
        let files = scan_dir(&dir, &[".adb"]);
        // Budget for two files → one victim, the oldest.
        let victims = over_budget_lru(&files, 200, &[]);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].path, files[0].path);
        // Under budget → no victims.
        assert!(over_budget_lru(&files, 300, &[]).is_empty());
        // A kept file is skipped; the next-oldest goes instead.
        let victims = over_budget_lru(&files, 200, &[files[0].path.as_path()]);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].path, files[1].path);
        // Zero budget with everything kept → nothing to remove.
        let keep: Vec<&Path> = files.iter().map(|f| f.path.as_path()).collect();
        assert!(over_budget_lru(&files, 0, &keep).is_empty());
        let _ = a;
        let removed = remove_all(&over_budget_lru(&files, 0, &[]));
        assert_eq!(removed, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_removals_are_counted_not_swallowed() {
        use crate::fsio::{ChaosFs, FaultEvent, FaultKind, FaultSchedule};
        let dir = tmpdir("sweep-errors");
        touch(&dir, "a.ckpt", 1, Duration::ZERO);
        touch(&dir, "b.ckpt", 1, Duration::ZERO);
        let files = scan_dir(&dir, &[".ckpt"]);
        let victims: Vec<&FileMeta> = files.iter().collect();
        // First removal hits an injected EIO; the second succeeds.
        let chaos = ChaosFs::new(&FaultSchedule {
            events: vec![FaultEvent {
                op: 0,
                kind: FaultKind::Eio,
            }],
        });
        let outcome = remove_all_with(&chaos, &victims);
        assert_eq!(
            outcome,
            SweepOutcome {
                removed: 1,
                errors: 1
            }
        );
        // A file already gone is neither a removal nor an error.
        let outcome = remove_all_with(&crate::fsio::RealFs, &victims);
        assert_eq!(outcome.errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
