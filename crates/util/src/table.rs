//! Plain-text table and CSV rendering for the experiment harness.
//!
//! Every `exp*` binary prints the rows/series the paper reports and also
//! writes a CSV artifact; this module keeps that formatting in one place.

/// A simple column-aligned text table with an optional title.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends one row of displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            let mut out = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!("{cell:<w$}  "));
            }
            out.trim_end().to_string()
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + rows, RFC-4180 quoting for commas).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimal places (paper-table style).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["model", "tput"]);
        t.row(&["gpt3-13b".into(), "1.27".into()]);
        t.row(&["t5".into(), "1.5".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("gpt3-13b"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "z\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"z\"\"q\""));
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new("", &["a"]);
        t.row(&["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains('2'));
    }

    #[test]
    fn row_display_and_empty() {
        let mut t = Table::new("", &["x"]);
        assert!(t.is_empty());
        t.row_display(&[42u32]);
        assert!(!t.is_empty());
        assert!(t.render().contains("42"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(2.0), "2.000");
    }
}
