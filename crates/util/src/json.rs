//! A small, dependency-free JSON layer.
//!
//! The workspace serialises execution plans, profile snapshots, audit
//! reports and experiment rows to JSON. Rather than pulling an external
//! serialisation framework into a build that must work fully offline, this
//! module provides the complete round-trip: a [`Value`] tree, a strict
//! recursive-descent parser, compact and pretty writers, and the
//! [`ToJson`]/[`FromJson`] traits the other crates implement by hand.
//!
//! Integers are kept exact: `u64` values (e.g. 64-bit hashes and byte
//! counts) never pass through `f64`, so round-trips are lossless.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (exact up to `u64::MAX`).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Any number written with a fraction or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Error produced by parsing or by typed extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input (0 for extraction errors).
    pub offset: usize,
}

impl JsonError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset,
        }
    }

    /// An extraction (shape-mismatch) error, without an input position.
    pub fn shape(message: impl Into<String>) -> Self {
        Self::new(message, 0)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at byte {}", self.message, self.offset)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for JsonError {}

/// Types that render themselves as a JSON [`Value`].
pub trait ToJson {
    /// Builds the JSON value.
    fn to_json_value(&self) -> Value;
}

/// Types restorable from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Parses the value, reporting shape mismatches as errors.
    fn from_json_value(v: &Value) -> Result<Self, JsonError>;
}

impl Value {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(JsonError::new("trailing characters", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing field `{key}`")))
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::shape(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as an exact u64.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::UInt(n) => Ok(*n),
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            Value::Float(x) if *x >= 0.0 && x.fract() == 0.0 && *x < 2f64.powi(53) => Ok(*x as u64),
            other => Err(JsonError::shape(format!("expected u64, got {other:?}"))),
        }
    }

    /// The value as a usize.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as a u32.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        u32::try_from(self.as_u64()?).map_err(|_| JsonError::shape("u32 out of range"))
    }

    /// The value as a u8.
    pub fn as_u8(&self) -> Result<u8, JsonError> {
        u8::try_from(self.as_u64()?).map_err(|_| JsonError::shape("u8 out of range"))
    }

    /// The value as an f64 (any numeric form).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            Value::Float(x) => Ok(*x),
            other => Err(JsonError::shape(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(JsonError::shape(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(xs) => Ok(xs),
            other => Err(JsonError::shape(format!("expected array, got {other:?}"))),
        }
    }

    /// Renders compact JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty JSON with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => out.push_str(&format_f64(*x)),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(xs) => {
                if xs.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    x.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Object-builder convenience: `obj([("a", Value::UInt(1))])`.
pub fn obj<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Array-builder over any `ToJson` iterator.
pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Value {
    Value::Array(items.into_iter().map(|x| x.to_json_value()).collect())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Shortest float form that round-trips; integral values keep a trailing
/// `.0` so they parse back as floats.
fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        let s = format!("{x}");
        debug_assert_eq!(s.parse::<f64>().ok(), Some(x));
        s
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                format!("expected `{}`", b as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::new(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::new(
                format!("unexpected `{}`", other as char),
                self.pos,
            )),
            None => Err(JsonError::new("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                _ => return Err(JsonError::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(JsonError::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::new("bad \\u escape", start))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape", start))?;
                            // Surrogate pairs are not produced by our writer;
                            // lone surrogates degrade to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::new("bad escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::new("invalid UTF-8", self.pos))?;
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number", start))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<i64>() {
                    return Ok(Value::Int(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError::new(format!("invalid number `{text}`"), start))
    }
}

// Blanket-ish impls for common primitives keep hand-written serialisers
// short.
impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl ToJson for u64 {
    fn to_json_value(&self) -> Value {
        Value::UInt(*self)
    }
}
impl ToJson for usize {
    fn to_json_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl ToJson for u32 {
    fn to_json_value(&self) -> Value {
        Value::UInt(u64::from(*self))
    }
}
impl ToJson for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl<T: ToJson> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (*self).to_json_value()
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}
impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("42").unwrap(), Value::UInt(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            Value::parse("\"hi\\n\"").unwrap(),
            Value::Str("hi\n".into())
        );
    }

    #[test]
    fn u64_exact_roundtrip() {
        let big = u64::MAX - 1;
        let v = Value::UInt(big);
        let back = Value::parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_u64().unwrap(), big);
    }

    #[test]
    fn nested_roundtrip() {
        let v = obj([
            ("name", Value::Str("x".into())),
            (
                "xs",
                Value::Array(vec![Value::UInt(1), Value::Float(2.5), Value::Null]),
            ),
            ("ok", Value::Bool(false)),
            ("empty", Value::Object(vec![])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn field_access() {
        let v = Value::parse("{\"a\": {\"b\": [10, 20]}}").unwrap();
        let xs = v.field("a").unwrap().field("b").unwrap();
        assert_eq!(xs.as_array().unwrap()[1].as_u64().unwrap(), 20);
        assert!(v.field("missing").is_err());
        assert!(v
            .field("missing")
            .unwrap_err()
            .to_string()
            .contains("missing"));
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "quote\" slash\\ newline\n tab\t unicode→ ctrl\u{1}";
        let v = Value::Str(s.into());
        assert_eq!(Value::parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn float_formatting_preserves_value() {
        for x in [0.5, 1.0 / 3.0, 1e-9, 123456.75, 500.0, -2.0] {
            let v = Value::Float(x);
            let back = Value::parse(&v.to_string_compact()).unwrap();
            assert_eq!(back.as_f64().unwrap(), x, "{x}");
        }
    }

    #[test]
    fn nonfinite_floats_degrade_to_null() {
        assert_eq!(Value::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn typed_extractors_enforce_shape() {
        let v = Value::parse("{\"n\": 300, \"s\": \"x\", \"f\": 1.25}").unwrap();
        assert_eq!(v.field("n").unwrap().as_u32().unwrap(), 300);
        assert!(v.field("n").unwrap().as_u8().is_err());
        assert!(v.field("s").unwrap().as_u64().is_err());
        assert_eq!(v.field("f").unwrap().as_f64().unwrap(), 1.25);
        assert!(v.field("f").unwrap().as_u64().is_err());
        assert_eq!(v.field("n").unwrap().as_f64().unwrap(), 300.0);
    }

    #[test]
    fn pretty_output_shape() {
        let v = obj([("a", Value::UInt(1))]);
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": 1\n}");
    }
}
