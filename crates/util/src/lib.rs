//! Shared infrastructure for the Aceso reproduction.
//!
//! Everything in this crate is deterministic: the RNG is a seeded
//! SplitMix64, hashing is stable FNV-1a, and the jitter helpers derive
//! perturbations from hashes rather than from any ambient entropy. This is
//! what makes every experiment in the repository reproducible bit-for-bit.

pub mod fsio;
pub mod hash;
pub mod json;
pub mod lockorder;
pub mod retention;
pub mod rng;
pub mod stats;
pub mod table;

pub use hash::{fnv1a, FnvHasher};
pub use rng::SplitMix64;
