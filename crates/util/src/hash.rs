//! Stable hashing.
//!
//! The search deduplicates configurations by a *semantic* hash that must be
//! stable across processes and platforms, so we cannot use
//! `std::collections::hash_map::DefaultHasher` (randomly seeded). FNV-1a is
//! simple, stable, and good enough for dedup sets of a few million entries.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Hashes a byte slice with 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental, platform-stable FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use aceso_util::FnvHasher;
///
/// let mut h = FnvHasher::new();
/// h.write_u64(7);
/// h.write_bytes(b"stage");
/// let a = h.finish();
/// assert_ne!(a, FnvHasher::new().finish());
/// ```
#[derive(Debug, Clone)]
pub struct FnvHasher {
    state: u64,
}

impl Default for FnvHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FnvHasher {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` as `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Returns the current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Derives a deterministic perturbation factor in `[1 - spread, 1 + spread]`
/// from a hash key.
///
/// The simulated profiler uses this to give each (operator, parallelism)
/// combination a stable, repeatable "measurement" deviation from the pure
/// analytic cost — the same role per-kernel efficiency quirks play on real
/// hardware.
pub fn keyed_jitter(key: u64, spread: f64) -> f64 {
    // One SplitMix64 finalisation round turns the key into white bits.
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    1.0 + spread * (2.0 * unit - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") per the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn hasher_matches_one_shot() {
        let mut h = FnvHasher::new();
        h.write_bytes(b"hello world");
        assert_eq!(h.finish(), fnv1a(b"hello world"));
    }

    #[test]
    fn order_sensitive() {
        let mut a = FnvHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = FnvHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn keyed_jitter_bounded_and_stable() {
        for key in 0..1000u64 {
            let j = keyed_jitter(key, 0.03);
            assert!((0.97..=1.03).contains(&j));
            assert_eq!(j, keyed_jitter(key, 0.03));
        }
    }

    #[test]
    fn keyed_jitter_spreads() {
        let lo = (0..1000).filter(|&k| keyed_jitter(k, 0.05) < 1.0).count();
        assert!(lo > 300 && lo < 700, "jitter should be roughly centred");
    }
}
