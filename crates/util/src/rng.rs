//! Deterministic pseudo-random number generation.
//!
//! The whole repository uses [`SplitMix64`] for anything stochastic (profiler
//! perturbations, runtime jitter, random-primitive search). SplitMix64 is
//! tiny, fast, passes BigCrush, and — unlike thread-local or OS entropy —
//! makes every experiment reproducible from its seed.

/// A seeded SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use aceso_util::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The current internal state, for checkpointing.
    ///
    /// A generator rebuilt with [`SplitMix64::from_state`] from this value
    /// produces exactly the sequence the original would have produced next.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restores a generator from a state captured by [`SplitMix64::state`].
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Returns 0 when `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling; bias is negligible for our ranges.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Returns a uniform value in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a multiplicative jitter factor in `[1 - spread, 1 + spread]`.
    ///
    /// Used to perturb simulated measurements around their analytic value.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        1.0 + self.range_f64(-spread, spread)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(4);
        for n in 1..50 {
            for _ in 0..20 {
                assert!(r.next_below(n) < n);
            }
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn jitter_within_spread() {
        let mut r = SplitMix64::new(6);
        for _ in 0..1000 {
            let j = r.jitter(0.05);
            assert!((0.95..=1.05).contains(&j));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(7);
        let mut xs: Vec<u32> = (0..32).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn state_round_trip_resumes_sequence() {
        let mut a = SplitMix64::new(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SplitMix64::new(8);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert!(r.choose(&[1, 2, 3]).is_some());
    }
}
