//! Small statistics helpers used by the experiment harness.

/// Returns the arithmetic mean, or 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Returns the geometric mean, or 0.0 for an empty slice.
///
/// All inputs must be positive; non-positive values are skipped.
pub fn geomean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Returns the `p`-th percentile (0..=100) using nearest-rank on a sorted copy.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Returns the mean absolute percentage error of `pred` against `actual`.
///
/// Pairs where `actual == 0` are skipped. Result is in percent.
///
/// # Examples
///
/// ```
/// let err = aceso_util::stats::mape(&[11.0, 9.0], &[10.0, 10.0]);
/// assert!((err - 10.0).abs() < 1e-12);
/// ```
pub fn mape(pred: &[f64], actual: &[f64]) -> f64 {
    let errs: Vec<f64> = pred
        .iter()
        .zip(actual)
        .filter(|(_, &a)| a != 0.0)
        .map(|(&p, &a)| ((p - a) / a).abs() * 100.0)
        .collect();
    mean(&errs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        // Non-positive values are skipped, not propagated as NaN.
        assert!((geomean(&[2.0, 0.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_basic() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn mape_basic() {
        let e = mape(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((e - 10.0).abs() < 1e-12);
        // Zero actuals are skipped.
        assert_eq!(mape(&[5.0], &[0.0]), 0.0);
    }
}
