//! `aceso` — command-line configuration search.
//!
//! ```console
//! $ aceso --model gpt3-2.6b --gpus 8 --budget-secs 30 --plan-out plan.json
//! ```
//!
//! Searches a parallel configuration for one of the paper's models on a
//! simulated V100 cluster, prints the found configuration with predicted
//! and simulated performance, and optionally writes the per-rank execution
//! plan. `aceso serve` runs the same search as a long-lived daemon with a
//! cross-request profile cache; `aceso submit` talks to it; `aceso
//! store` inspects the daemon's on-disk profile store; `aceso obs-diff`
//! compares two metric snapshots.

use aceso::cli::USAGE;
use aceso::model::zoo;
use aceso::obs::{ObsReport, Recorder};
use aceso::prelude::*;
use aceso::runtime::ExecutionPlan;
use aceso::search::{SearchCheckpoint, SearchResult, SearchStep};
use aceso::serve::{self, Request, ServeOptions, Server};
use aceso::util::json::Value;
use aceso_audit::AuditOptions;
use std::time::Duration;

/// Parsed command-line options.
struct Args {
    model: String,
    gpus: usize,
    budget_secs: u64,
    stages: Option<usize>,
    zero: bool,
    plan_out: Option<String>,
    metrics: bool,
    metrics_out: Option<String>,
    events_out: Option<String>,
    checkpoint: Option<String>,
    resume: Option<String>,
    checkpoint_every: usize,
    search_threads: usize,
}

/// Runs `aceso audit` and exits: 0 when clean, 1 on findings, 2 on bad
/// usage.
fn run_audit(mut it: impl Iterator<Item = String>) -> ! {
    let mut opts = AuditOptions::default();
    let mut json_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let parsed = match flag.as_str() {
            "--smoke" => {
                opts.smoke = true;
                Ok(())
            }
            "--full" => {
                opts.full = true;
                Ok(())
            }
            "--json" => value("--json").map(|v| json_out = Some(v)),
            "--metrics-out" => value("--metrics-out").map(|v| metrics_out = Some(v)),
            "--mutate" => value("--mutate").and_then(|v| {
                aceso_audit::Mutation::parse(&v)
                    .map(|m| opts.mutation = Some(m))
                    .ok_or_else(|| format!("--mutate: unknown mutation `{v}`"))
            }),
            "--epsilon" => value("--epsilon").and_then(|v| {
                v.parse()
                    .map(|e| opts.epsilon = e)
                    .map_err(|e| format!("--epsilon: {e}"))
            }),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => Err(format!("unknown audit flag `{other}`")),
        };
        if let Err(msg) = parsed {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    }

    eprintln!(
        "auditing {} corpus (epsilon {:.1e})...",
        if opts.smoke {
            "smoke"
        } else {
            "full model-zoo"
        },
        opts.epsilon
    );
    let report = aceso_audit::run(&opts);
    print!("{}", report.render());
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error writing {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote JSON report to {path}");
    }
    if let Some(path) = metrics_out {
        let rec = Recorder::new(true);
        for (rule, n) in report.rule_counts() {
            rec.count_audit_finding(rule, n as u64);
        }
        let mut obs = ObsReport::new();
        obs.absorb(rec);
        if let Err(e) = std::fs::write(&path, obs.metrics_json()) {
            eprintln!("error writing {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote metric snapshot to {path}");
    }
    std::process::exit(if report.clean() { 0 } else { 1 });
}

/// Runs `aceso store (ls|verify|prune) --dir DIR` and exits: 0 when the
/// store is clean (or listed / pruned), 1 when `verify` reports
/// findings, 2 on bad usage or an unreadable directory.
fn run_store(mut it: impl Iterator<Item = String>) -> ! {
    let action = match it.next().as_deref() {
        Some(a @ ("ls" | "verify" | "prune")) => a.to_string(),
        Some("--help" | "-h") => {
            eprintln!("{USAGE}");
            std::process::exit(0);
        }
        None => {
            eprintln!("error: store needs an action (ls | verify | prune)\n\n{USAGE}");
            std::process::exit(2);
        }
        Some(other) => {
            eprintln!("error: unknown store action `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut dir: Option<std::path::PathBuf> = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dir" => match it.next() {
                Some(v) => dir = Some(std::path::PathBuf::from(v)),
                None => {
                    eprintln!("error: missing value for --dir\n\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown store flag `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("error: store {action} requires --dir\n\n{USAGE}");
        std::process::exit(2);
    };
    // Inspection never writes entries, so the byte budget is moot.
    let store = aceso::store::Store::open(&dir, u64::MAX).unwrap_or_else(|e| {
        eprintln!("error: cannot open store {}: {e}", dir.display());
        std::process::exit(2);
    });
    match action.as_str() {
        "ls" => {
            let entries = store.ls();
            println!("{} entries in {}", entries.len(), dir.display());
            for e in entries {
                let version = e
                    .schema_version
                    .map_or_else(|| "-".to_string(), |v| v.to_string());
                let ops = e.entries.map_or_else(|| "-".to_string(), |n| n.to_string());
                let status = match &e.status {
                    Ok(()) => "ok".to_string(),
                    Err(reason) => reason.to_string(),
                };
                println!(
                    "{}  {} B  v{version}  {ops} entries  {status}",
                    e.file, e.bytes
                );
            }
            std::process::exit(0);
        }
        "verify" => {
            let findings: Vec<_> = store
                .ls()
                .into_iter()
                .filter_map(|e| e.status.err().map(|r| (e.file, r)))
                .collect();
            for (file, reason) in &findings {
                println!("{file}: {reason}");
            }
            println!(
                "{} finding{} in {}",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" },
                dir.display()
            );
            std::process::exit(if findings.is_empty() { 0 } else { 1 });
        }
        _ => {
            let removed = store.prune();
            println!("pruned {removed} files from {}", dir.display());
            std::process::exit(0);
        }
    }
}

/// Runs `aceso serve` and exits when the daemon drains.
fn run_serve(mut it: impl Iterator<Item = String>) -> ! {
    let mut addr = "127.0.0.1:7100".to_string();
    let mut opts = ServeOptions::default();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let parsed = match flag.as_str() {
            "--addr" => value("--addr").map(|v| addr = v),
            "--workers" => value("--workers").and_then(|v| {
                v.parse()
                    .map(|n| opts.workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--cache-mb" => value("--cache-mb").and_then(|v| {
                v.parse::<u64>()
                    .map(|m| opts.cache_bytes = m << 20)
                    .map_err(|e| format!("--cache-mb: {e}"))
            }),
            "--max-budget-secs" => value("--max-budget-secs").and_then(|v| {
                v.parse::<u64>()
                    .map(|s| opts.max_budget_secs = (s > 0).then_some(s))
                    .map_err(|e| format!("--max-budget-secs: {e}"))
            }),
            "--max-gpus" => value("--max-gpus").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| opts.max_gpus = (n > 0).then_some(n))
                    .map_err(|e| format!("--max-gpus: {e}"))
            }),
            "--max-iterations" => value("--max-iterations").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| opts.max_iterations = (n > 0).then_some(n))
                    .map_err(|e| format!("--max-iterations: {e}"))
            }),
            "--max-deepnet-layers" => value("--max-deepnet-layers").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| opts.max_deepnet_layers = (n > 0).then_some(n))
                    .map_err(|e| format!("--max-deepnet-layers: {e}"))
            }),
            "--io-timeout-secs" => value("--io-timeout-secs").and_then(|v| {
                v.parse::<u64>()
                    .map(|s| opts.io_timeout = (s > 0).then(|| Duration::from_secs(s)))
                    .map_err(|e| format!("--io-timeout-secs: {e}"))
            }),
            "--spool-dir" => {
                value("--spool-dir").map(|v| opts.spool_dir = Some(std::path::PathBuf::from(v)))
            }
            "--checkpoint-every" => value("--checkpoint-every").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| opts.checkpoint_every = n.max(1))
                    .map_err(|e| format!("--checkpoint-every: {e}"))
            }),
            "--spool-ttl-secs" => value("--spool-ttl-secs").and_then(|v| {
                v.parse::<u64>()
                    .map(|s| opts.spool_ttl_secs = (s > 0).then_some(s))
                    .map_err(|e| format!("--spool-ttl-secs: {e}"))
            }),
            "--reactor" => {
                opts.reactor = true;
                Ok(())
            }
            "--max-connections" => value("--max-connections").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| opts.max_connections = n)
                    .map_err(|e| format!("--max-connections: {e}"))
            }),
            "--store-dir" => {
                value("--store-dir").map(|v| opts.store_dir = Some(std::path::PathBuf::from(v)))
            }
            "--store-budget-bytes" => value("--store-budget-bytes").and_then(|v| {
                v.parse::<u64>()
                    .map(|n| opts.store_budget_bytes = n)
                    .map_err(|e| format!("--store-budget-bytes: {e}"))
            }),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => Err(format!("unknown serve flag `{other}`")),
        };
        if let Err(msg) = parsed {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
    let server = Server::bind(&addr, opts).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    // The smoke harness greps this line for the resolved ephemeral port.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = server.run();
    println!("daemon drained; server-level counters:");
    print!("{}", report.summary_table());
    std::process::exit(0);
}

/// Runs `aceso submit` and exits: 0 on success, 1 on a server-side
/// failure, 2 on bad usage.
fn run_submit(mut it: impl Iterator<Item = String>) -> ! {
    let mut addr: Option<String> = None;
    let mut req = Request::default();
    let mut plan_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut events_out: Option<String> = None;
    let mut retries = 0usize;
    let mut retry_deadline: Option<std::time::Duration> = None;
    let mut stats = false;
    let mut do_shutdown = false;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let parsed = match flag.as_str() {
            "--addr" => value("--addr").map(|v| addr = Some(v)),
            "--model" => value("--model").map(|v| req.model = v),
            "--gpus" => value("--gpus").and_then(|v| {
                v.parse()
                    .map(|n| req.gpus = n)
                    .map_err(|e| format!("--gpus: {e}"))
            }),
            "--stages" => value("--stages").and_then(|v| {
                v.parse()
                    .map(|p| req.stages = Some(p))
                    .map_err(|e| format!("--stages: {e}"))
            }),
            "--zero" => {
                req.zero = true;
                Ok(())
            }
            "--iterations" => value("--iterations").and_then(|v| {
                v.parse()
                    .map(|i| req.max_iterations = i)
                    .map_err(|e| format!("--iterations: {e}"))
            }),
            "--budget-secs" => value("--budget-secs").and_then(|v| {
                v.parse()
                    .map(|s| req.budget_secs = Some(s))
                    .map_err(|e| format!("--budget-secs: {e}"))
            }),
            "--seed" => value("--seed").and_then(|v| {
                v.parse()
                    .map(|s| req.seed = s)
                    .map_err(|e| format!("--seed: {e}"))
            }),
            "--search-threads" => value("--search-threads").and_then(|v| {
                v.parse()
                    .map(|n| req.search_threads = n)
                    .map_err(|e| format!("--search-threads: {e}"))
            }),
            "--request-id" => value("--request-id").map(|v| req.request_id = Some(v)),
            "--retries" => value("--retries").and_then(|v| {
                v.parse()
                    .map(|n| retries = n)
                    .map_err(|e| format!("--retries: {e}"))
            }),
            "--retry-deadline-secs" => value("--retry-deadline-secs").and_then(|v| {
                v.parse::<u64>()
                    .map(|s| retry_deadline = Some(std::time::Duration::from_secs(s)))
                    .map_err(|e| format!("--retry-deadline-secs: {e}"))
            }),
            "--plan-out" => value("--plan-out").map(|v| {
                req.plan = true;
                plan_out = Some(v);
            }),
            "--metrics-out" => value("--metrics-out").map(|v| metrics_out = Some(v)),
            "--events-out" => value("--events-out").map(|v| events_out = Some(v)),
            "--stats" => {
                stats = true;
                Ok(())
            }
            "--shutdown" => {
                do_shutdown = true;
                Ok(())
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => Err(format!("unknown submit flag `{other}`")),
        };
        if let Err(msg) = parsed {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
    let Some(addr) = addr else {
        eprintln!("error: submit requires --addr\n\n{USAGE}");
        std::process::exit(2);
    };
    if do_shutdown {
        match serve::shutdown(&addr) {
            Ok(()) => {
                println!("daemon at {addr} is draining");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if stats {
        match serve::server_stats(&addr) {
            Ok(metrics) => {
                println!("{}", metrics.to_string_pretty());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if req.model.is_empty() {
        eprintln!("error: submit requires --model (or --stats/--shutdown)\n\n{USAGE}");
        std::process::exit(2);
    }

    eprintln!("submitting {} to {addr}...", req.model);
    let resp = match serve::submit_with_retries_deadline(&addr, &req, retries, retry_deadline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let field_f64 = |name: &str| resp.result.get(name).and_then(|v| v.as_f64().ok());
    let field_u64 = |name: &str| resp.result.get(name).and_then(|v| v.as_u64().ok());
    println!(
        "served search: profile cache {}, explored {} configurations",
        resp.cache,
        field_u64("explored").unwrap_or(0),
    );
    println!(
        "best predicted iteration {:.3} s over {} stages ({})",
        field_f64("best_time").unwrap_or(f64::NAN),
        field_u64("stages").unwrap_or(0),
        if resp
            .result
            .get("best_oom")
            .and_then(|v| v.as_bool().ok())
            .unwrap_or(false)
        {
            "OOM"
        } else {
            "fits"
        },
    );
    let write_out = |path: &Option<String>, contents: String, what: &str| {
        if let Some(path) = path {
            std::fs::write(path, contents).unwrap_or_else(|e| {
                eprintln!("error writing {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {what} to {path}");
        }
    };
    write_out(&metrics_out, resp.metrics_json(), "metrics snapshot");
    write_out(&events_out, resp.events_jsonl(), "event stream");
    if let Some(path) = &plan_out {
        match &resp.plan {
            Some(plan) => write_out(
                &Some(path.clone()),
                plan.to_string_pretty(),
                "execution plan",
            ),
            None => eprintln!("note: no execution plan returned (best configuration is OOM)"),
        }
    }
    std::process::exit(0);
}

/// Runs `aceso obs-diff A.json B.json` and exits: 0 on a rendered diff,
/// 2 on schema mismatch or unreadable input.
fn run_obs_diff(mut it: impl Iterator<Item = String>) -> ! {
    let (Some(path_a), Some(path_b)) = (it.next(), it.next()) else {
        eprintln!("error: obs-diff needs two snapshot files\n\n{USAGE}");
        std::process::exit(2);
    };
    if let Some(extra) = it.next() {
        eprintln!("error: unexpected obs-diff argument `{extra}`\n\n{USAGE}");
        std::process::exit(2);
    }
    let load = |path: &str| -> Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error reading {path}: {e}");
            std::process::exit(2);
        });
        Value::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let (a, b) = (load(&path_a), load(&path_b));
    match aceso::obs::render_diff(&a, &b) {
        Ok(rendered) => {
            print!("{rendered}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        model: String::new(),
        gpus: 8,
        budget_secs: 30,
        stages: None,
        zero: false,
        plan_out: None,
        metrics: true,
        metrics_out: None,
        events_out: None,
        checkpoint: None,
        resume: None,
        checkpoint_every: 32,
        search_threads: 0,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--model" => args.model = value("--model")?,
            "--gpus" => {
                args.gpus = value("--gpus")?
                    .parse()
                    .map_err(|e| format!("--gpus: {e}"))?
            }
            "--budget-secs" => {
                args.budget_secs = value("--budget-secs")?
                    .parse()
                    .map_err(|e| format!("--budget-secs: {e}"))?
            }
            "--stages" => {
                args.stages = Some(
                    value("--stages")?
                        .parse()
                        .map_err(|e| format!("--stages: {e}"))?,
                )
            }
            "--zero" => args.zero = true,
            "--plan-out" => args.plan_out = Some(value("--plan-out")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--events-out" => args.events_out = Some(value("--events-out")?),
            "--no-metrics" => args.metrics = false,
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--resume" => args.resume = Some(value("--resume")?),
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse::<usize>()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
                    .max(1)
            }
            "--search-threads" => {
                args.search_threads = value("--search-threads")?
                    .parse()
                    .map_err(|e| format!("--search-threads: {e}"))?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.model.is_empty() {
        return Err("missing --model".into());
    }
    if !args.metrics && (args.metrics_out.is_some() || args.events_out.is_some()) {
        return Err(
            "--no-metrics disables the recorder, so --metrics-out/--events-out would \
             write empty files; drop one side of the conflict"
                .into(),
        );
    }
    Ok(args)
}

/// Atomically replaces `path` with the serialised checkpoint: write a
/// sibling temp file, then rename over the target, so a kill mid-write
/// leaves the previous complete snapshot instead of a torn file.
fn write_checkpoint(path: &str, ckpt: &SearchCheckpoint) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    aceso::util::fsio::write_atomic(
        &aceso::util::fsio::RealFs,
        path.as_ref(),
        tmp.as_ref(),
        ckpt.to_json_string().as_bytes(),
    )
}

/// Loads `--resume FILE`, degrading gracefully: a missing, corrupt,
/// foreign-schema, or incompatible checkpoint warns on stderr and the
/// search starts fresh — resuming is an optimisation, never a gate.
fn load_resume(search: &AcesoSearch<'_>, path: &str, metrics: bool) -> Option<SearchCheckpoint> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("warning: cannot read checkpoint {path}: {e}; searching from scratch");
            return None;
        }
    };
    let loaded = SearchCheckpoint::from_json_str(&text)
        .and_then(|c| search.checkpoint_compatible(&c, metrics).map(|()| c));
    match loaded {
        Ok(ckpt) => {
            eprintln!(
                "resuming from {path}: {} iterations ({:.2} s of search) already done",
                ckpt.iterations_done(),
                ckpt.elapsed_secs()
            );
            Some(ckpt)
        }
        Err(e) => {
            eprintln!("warning: checkpoint {path} is unusable ({e}); searching from scratch");
            None
        }
    }
}

/// Runs the search honouring `--resume` / `--checkpoint`: resume state
/// is loaded first (if any), and when `--checkpoint FILE` is given the
/// search runs in slices of `--checkpoint-every` iterations, spooling an
/// atomic snapshot at each pause. Checkpointing never changes the result
/// — a resumed or sliced run is bit-identical to an uninterrupted one
/// (`tests/checkpoint_resume.rs`).
fn run_checkpointed(
    search: &AcesoSearch<'_>,
    args: &Args,
) -> Result<(SearchResult, ObsReport), String> {
    let resumed = args
        .resume
        .as_deref()
        .and_then(|path| load_resume(search, path, args.metrics));
    let Some(out_path) = args.checkpoint.as_deref() else {
        // No spooling requested: run (or finish) in one go.
        return match resumed {
            Some(ckpt) => search
                .resume_from(args.metrics, &ckpt)
                .map_err(|e| e.to_string()),
            None => search.run_observed(args.metrics).map_err(|e| e.to_string()),
        };
    };
    let every = args.checkpoint_every;
    let mut bound;
    let mut step = match resumed {
        Some(ckpt) => {
            bound = ckpt.resume_bound() + every;
            search
                .resume_partial(args.metrics, &ckpt, Some(bound))
                .map_err(|e| e.to_string())?
        }
        None => {
            bound = every;
            search
                .run_partial(args.metrics, bound)
                .map_err(|e| e.to_string())?
        }
    };
    let mut written = 0usize;
    loop {
        match step {
            SearchStep::Done(result, report) => {
                // The run completed; the spool has served its purpose.
                let _ = std::fs::remove_file(out_path);
                if written > 0 {
                    eprintln!("wrote {written} checkpoints to {out_path} (removed on completion)");
                }
                return Ok((result, report));
            }
            SearchStep::Paused(ckpt) => {
                if let Err(e) = write_checkpoint(out_path, &ckpt) {
                    eprintln!("warning: cannot write checkpoint {out_path}: {e}");
                } else {
                    written += 1;
                }
                bound += every;
                step = search
                    .resume_partial(args.metrics, &ckpt, Some(bound))
                    .map_err(|e| e.to_string())?;
            }
        }
    }
}

/// Runs `aceso chaos (run|replay)` and exits: 0 when every scenario
/// passed its standing oracles, 1 on an oracle violation (`run` also
/// writes the shrunk replayable trace), 2 on bad usage.
fn run_chaos(mut it: impl Iterator<Item = String>) -> ! {
    let action = match it.next().as_deref() {
        Some(a @ ("run" | "replay")) => a.to_string(),
        Some("--help" | "-h") => {
            eprintln!("{USAGE}");
            std::process::exit(0);
        }
        None => {
            eprintln!("error: chaos needs an action (run | replay)\n\n{USAGE}");
            std::process::exit(2);
        }
        Some(other) => {
            eprintln!("error: unknown chaos action `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut opts = aceso::chaos::ChaosOptions::in_temp("cli");
    if action == "replay" {
        let Some(file) = it.next() else {
            eprintln!("error: chaos replay requires a trace file\n\n{USAGE}");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
            eprintln!("error: cannot read {file}: {e}");
            std::process::exit(2);
        });
        let trace = aceso::chaos::Trace::from_json_str(&text).unwrap_or_else(|e| {
            eprintln!("error: {file} is not a chaos trace: {e}");
            std::process::exit(2);
        });
        // A mutant trace replays with the mutation gate it was recorded
        // under — the switch travels in the schedule, not the CLI.
        let engine = aceso::chaos::Engine::new(opts.clone()).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        let outcome = engine.run_schedule(&trace.schedule);
        let _ = std::fs::remove_dir_all(&opts.root);
        if outcome.violations.is_empty() {
            println!(
                "trace {file} (seed {}, {} scheduled faults): no oracle violation reproduced",
                trace.schedule.seed,
                trace.schedule.fault_count()
            );
            std::process::exit(0);
        }
        println!(
            "trace {file} (seed {}, {} scheduled faults) reproduces {} violation(s):",
            trace.schedule.seed,
            trace.schedule.fault_count(),
            outcome.violations.len()
        );
        for v in &outcome.violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }
    let mut seed_range: Option<(u64, u64)> = None;
    let mut trace_out = "chaos-trace.json".to_string();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let parsed = match flag.as_str() {
            "--seed-range" => value("--seed-range").and_then(|v| {
                let parts: Vec<&str> = v.splitn(2, "..").collect();
                match parts.as_slice() {
                    [a, b] => match (a.parse::<u64>(), b.parse::<u64>()) {
                        (Ok(a), Ok(b)) if a < b => {
                            seed_range = Some((a, b));
                            Ok(())
                        }
                        _ => Err(format!("--seed-range: `{v}` is not A..B with A < B")),
                    },
                    _ => Err(format!("--seed-range: `{v}` is not A..B")),
                }
            }),
            "--mutate" => value("--mutate").and_then(|v| match v.as_str() {
                "store-direct-write" => {
                    opts.mutate_direct_writes = true;
                    Ok(())
                }
                other => Err(format!(
                    "--mutate: unknown mutation `{other}` (expected store-direct-write)"
                )),
            }),
            "--trace-out" => value("--trace-out").map(|v| trace_out = v),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown chaos flag `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        };
        if let Err(msg) = parsed {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
    let Some((first, last)) = seed_range else {
        eprintln!("error: chaos run requires --seed-range A..B\n\n{USAGE}");
        std::process::exit(2);
    };
    let engine = aceso::chaos::Engine::new(opts.clone()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let report = engine.run_range(first, last);
    let _ = std::fs::remove_dir_all(&opts.root);
    let by_kind: Vec<String> = report
        .report
        .metrics()
        .chaos_faults()
        .iter()
        .map(|(kind, n)| format!("{kind}={n}"))
        .collect();
    println!(
        "chaos: {} scenario(s), {} fault(s) injected [{}]",
        report.runs,
        report.faults_injected,
        by_kind.join(" ")
    );
    match report.failure {
        None => {
            println!("chaos: no oracle violations in seeds {first}..{last}");
            std::process::exit(0);
        }
        Some(trace) => {
            println!(
                "chaos: seed {} violated {} oracle(s); shrunk to {} scheduled fault(s):",
                trace.schedule.seed,
                trace.violations.len(),
                trace.schedule.fault_count()
            );
            for v in &trace.violations {
                println!("  {v}");
            }
            if let Err(e) = std::fs::write(&trace_out, trace.to_json_string()) {
                eprintln!("error: cannot write trace to {trace_out}: {e}");
            } else {
                println!("chaos: replayable trace written to {trace_out}");
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("audit") => {
            argv.next();
            run_audit(argv);
        }
        Some("serve") => {
            argv.next();
            run_serve(argv);
        }
        Some("store") => {
            argv.next();
            run_store(argv);
        }
        Some("submit") => {
            argv.next();
            run_submit(argv);
        }
        Some("obs-diff") => {
            argv.next();
            run_obs_diff(argv);
        }
        Some("chaos") => {
            argv.next();
            run_chaos(argv);
        }
        // `aceso search` is the explicit form of the default command.
        Some("search") => {
            argv.next();
        }
        _ => {}
    }
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };
    let Some(model) = zoo::by_name(&args.model) else {
        eprintln!("error: unknown model `{}`\n\n{USAGE}", args.model);
        std::process::exit(2);
    };

    let cluster = ClusterSpec::v100_gpus(args.gpus);
    eprintln!(
        "model {} ({} ops, {:.2} B params) on {} simulated V100-32GB",
        model.name,
        model.len(),
        model.total_params() as f64 / 1e9,
        cluster.total_gpus()
    );
    eprintln!("profiling operators...");
    let db = ProfileDb::build(&model, &cluster);

    let mut options = SearchOptions {
        max_iterations: 10_000,
        time_budget: Some(Duration::from_secs(args.budget_secs)),
        stage_counts: args.stages.map(|p| vec![p]),
        search_threads: args.search_threads,
        ..SearchOptions::default()
    };
    options.gen_options.enable_zero = args.zero;

    eprintln!("searching ({} s budget)...", args.budget_secs);
    let search = AcesoSearch::new(&model, &cluster, &db, options);
    let (result, mut obs) = match run_checkpointed(&search, &args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "explored {} configurations in {:.1?}; best found:",
        result.explored, result.wall_time
    );
    print!(
        "{}",
        aceso::config::describe(&result.best_config, Some(&model))
    );

    let sim_rec = Recorder::new(args.metrics);
    let report = Simulator::with_defaults(&model, &cluster, &db)
        .execute_observed(&result.best_config, &sim_rec)
        .expect("searched configs execute");
    obs.absorb(sim_rec);
    println!(
        "predicted iteration {:.3} s | simulated {:.3} s | {:.1} samples/s | \
         {:.1} TFLOPS/GPU | peak mem {:.1} GB ({})",
        result.best_time,
        report.iteration_time,
        report.throughput,
        report.tflops_per_gpu,
        report.peak_memory as f64 / 1e9,
        if report.ok() { "fits" } else { "OOM" },
    );

    if args.metrics {
        print!("{}", obs.summary_table());
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, obs.metrics_json()).unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = &args.events_out {
        std::fs::write(path, obs.events_jsonl()).unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote event stream to {path}");
    }

    if let Some(path) = args.plan_out {
        let plan = ExecutionPlan::build(&model, &cluster, &result.best_config)
            .expect("valid config yields a plan");
        std::fs::write(&path, plan.to_json()).unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote execution plan to {path}");
    }
}
