//! `aceso` — command-line configuration search.
//!
//! ```console
//! $ aceso --model gpt3-2.6b --gpus 8 --budget-secs 30 --plan-out plan.json
//! ```
//!
//! Searches a parallel configuration for one of the paper's models on a
//! simulated V100 cluster, prints the found configuration with predicted
//! and simulated performance, and optionally writes the per-rank execution
//! plan.

use aceso::model::zoo::{gpt3, t5, wide_resnet, Gpt3Size, T5Size, WideResnetSize};
use aceso::model::ModelGraph;
use aceso::obs::Recorder;
use aceso::prelude::*;
use aceso::runtime::ExecutionPlan;
use aceso_audit::AuditOptions;
use std::time::Duration;

/// Parsed command-line options.
struct Args {
    model: String,
    gpus: usize,
    budget_secs: u64,
    stages: Option<usize>,
    zero: bool,
    plan_out: Option<String>,
    metrics: bool,
    metrics_out: Option<String>,
    events_out: Option<String>,
}

const USAGE: &str = "\
usage: aceso [search] --model <name> [--gpus N] [--budget-secs S] [--stages P]
             [--zero] [--plan-out FILE] [--metrics-out FILE]
             [--events-out FILE] [--no-metrics]
       aceso audit [--smoke] [--json FILE] [--epsilon E]

models: gpt3-{0.35b,1.3b,2.6b,6.7b,13b}, t5-{0.77b,3b,6b,11b,22b},
        wresnet-{0.5b,2b,4b,6.8b,13b}, deepnet-<layers>l
flags:
  --gpus N          simulated V100 count (default 8; ≤8 per node)
  --budget-secs S   search wall-clock budget (default 30)
  --stages P        pin the pipeline stage count (default: search 1..)
  --zero            enable the ZeRO-1 extension primitives
  --plan-out FILE   write the per-rank execution plan as JSON
  --metrics-out FILE  write the metric snapshot as JSON (see
                      docs/OBSERVABILITY.md for the schema)
  --events-out FILE   write the structured event stream as JSONL
  --no-metrics      disable observability entirely (skips the summary
                    table; the two flags above then write empty files)

audit: run the static invariant analyzers (primitive signatures,
transform validity, perf-model consistency, search-trace replay) over
the model-zoo corpus; exits non-zero if any finding is reported
  --smoke           audit a single small model (fast CI check)
  --json FILE       also write the findings report as JSON
  --epsilon E       float comparison tolerance (default 1e-9)";

/// Runs `aceso audit` and exits: 0 when clean, 1 on findings, 2 on bad
/// usage.
fn run_audit(mut it: impl Iterator<Item = String>) -> ! {
    let mut opts = AuditOptions::default();
    let mut json_out: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let parsed = match flag.as_str() {
            "--smoke" => {
                opts.smoke = true;
                Ok(())
            }
            "--json" => value("--json").map(|v| json_out = Some(v)),
            "--epsilon" => value("--epsilon").and_then(|v| {
                v.parse()
                    .map(|e| opts.epsilon = e)
                    .map_err(|e| format!("--epsilon: {e}"))
            }),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => Err(format!("unknown audit flag `{other}`")),
        };
        if let Err(msg) = parsed {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    }

    eprintln!(
        "auditing {} corpus (epsilon {:.1e})...",
        if opts.smoke {
            "smoke"
        } else {
            "full model-zoo"
        },
        opts.epsilon
    );
    let report = aceso_audit::run(&opts);
    print!("{}", report.render());
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error writing {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote JSON report to {path}");
    }
    std::process::exit(if report.clean() { 0 } else { 1 });
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        model: String::new(),
        gpus: 8,
        budget_secs: 30,
        stages: None,
        zero: false,
        plan_out: None,
        metrics: true,
        metrics_out: None,
        events_out: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--model" => args.model = value("--model")?,
            "--gpus" => {
                args.gpus = value("--gpus")?
                    .parse()
                    .map_err(|e| format!("--gpus: {e}"))?
            }
            "--budget-secs" => {
                args.budget_secs = value("--budget-secs")?
                    .parse()
                    .map_err(|e| format!("--budget-secs: {e}"))?
            }
            "--stages" => {
                args.stages = Some(
                    value("--stages")?
                        .parse()
                        .map_err(|e| format!("--stages: {e}"))?,
                )
            }
            "--zero" => args.zero = true,
            "--plan-out" => args.plan_out = Some(value("--plan-out")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--events-out" => args.events_out = Some(value("--events-out")?),
            "--no-metrics" => args.metrics = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.model.is_empty() {
        return Err("missing --model".into());
    }
    Ok(args)
}

fn build_model(name: &str) -> Option<ModelGraph> {
    let gpt = |s| Some(gpt3(s));
    let t = |s| Some(t5(s));
    let w = |s| Some(wide_resnet(s));
    match name {
        "gpt3-0.35b" => gpt(Gpt3Size::S0_35b),
        "gpt3-1.3b" => gpt(Gpt3Size::S1_3b),
        "gpt3-2.6b" => gpt(Gpt3Size::S2_6b),
        "gpt3-6.7b" => gpt(Gpt3Size::S6_7b),
        "gpt3-13b" => gpt(Gpt3Size::S13b),
        "t5-0.77b" => t(T5Size::S0_77b),
        "t5-3b" => t(T5Size::S3b),
        "t5-6b" => t(T5Size::S6b),
        "t5-11b" => t(T5Size::S11b),
        "t5-22b" => t(T5Size::S22b),
        "wresnet-0.5b" => w(WideResnetSize::S0_5b),
        "wresnet-2b" => w(WideResnetSize::S2b),
        "wresnet-4b" => w(WideResnetSize::S4b),
        "wresnet-6.8b" => w(WideResnetSize::S6_8b),
        "wresnet-13b" => w(WideResnetSize::S13b),
        other => {
            let layers = other
                .strip_prefix("deepnet-")
                .and_then(|s| s.strip_suffix('l'))
                .and_then(|s| s.parse::<usize>().ok())?;
            Some(aceso::model::zoo::deepnet(layers))
        }
    }
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("audit") => {
            argv.next();
            run_audit(argv);
        }
        // `aceso search` is the explicit form of the default command.
        Some("search") => {
            argv.next();
        }
        _ => {}
    }
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };
    let Some(model) = build_model(&args.model) else {
        eprintln!("error: unknown model `{}`\n\n{USAGE}", args.model);
        std::process::exit(2);
    };

    let cluster = ClusterSpec::v100_gpus(args.gpus);
    eprintln!(
        "model {} ({} ops, {:.2} B params) on {} simulated V100-32GB",
        model.name,
        model.len(),
        model.total_params() as f64 / 1e9,
        cluster.total_gpus()
    );
    eprintln!("profiling operators...");
    let db = ProfileDb::build(&model, &cluster);

    let mut options = SearchOptions {
        max_iterations: 10_000,
        time_budget: Some(Duration::from_secs(args.budget_secs)),
        stage_counts: args.stages.map(|p| vec![p]),
        ..SearchOptions::default()
    };
    options.gen_options.enable_zero = args.zero;

    eprintln!("searching ({} s budget)...", args.budget_secs);
    let (result, mut obs) =
        match AcesoSearch::new(&model, &cluster, &db, options).run_observed(args.metrics) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
    println!(
        "explored {} configurations in {:.1?}; best found:",
        result.explored, result.wall_time
    );
    print!(
        "{}",
        aceso::config::describe(&result.best_config, Some(&model))
    );

    let sim_rec = Recorder::new(args.metrics);
    let report = Simulator::with_defaults(&model, &cluster, &db)
        .execute_observed(&result.best_config, &sim_rec)
        .expect("searched configs execute");
    obs.absorb(sim_rec);
    println!(
        "predicted iteration {:.3} s | simulated {:.3} s | {:.1} samples/s | \
         {:.1} TFLOPS/GPU | peak mem {:.1} GB ({})",
        result.best_time,
        report.iteration_time,
        report.throughput,
        report.tflops_per_gpu,
        report.peak_memory as f64 / 1e9,
        if report.ok() { "fits" } else { "OOM" },
    );

    if args.metrics {
        print!("{}", obs.summary_table());
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, obs.metrics_json()).unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = &args.events_out {
        std::fs::write(path, obs.events_jsonl()).unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote event stream to {path}");
    }

    if let Some(path) = args.plan_out {
        let plan = ExecutionPlan::build(&model, &cluster, &result.best_config)
            .expect("valid config yields a plan");
        std::fs::write(&path, plan.to_json()).unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote execution plan to {path}");
    }
}
