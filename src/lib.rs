//! Aceso-rs: a Rust reproduction of *Aceso: Efficient Parallel DNN Training
//! through Iterative Bottleneck Alleviation* (EuroSys 2024).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`model`] — operator-level DNN IR and the paper's model zoo.
//! * [`cluster`] — device/topology model and collective cost functions.
//! * [`config`] — parallel configuration representation (§3.1).
//! * [`profile`] — simulated operator profiler and reusable profile DB.
//! * [`perf`] — the analytic performance model (§3.3, Eq. 1 & 2).
//! * [`search`] — the Aceso search: primitives, heuristics, multi-hop (§3–4).
//! * [`obs`] — structured observability: events, counters, histograms
//!   (schema in `docs/OBSERVABILITY.md`).
//! * [`baselines`] — Megatron-LM grid, Alpa-like two-level DP, pure DP,
//!   random-primitive search.
//! * [`runtime`] — discrete-event 1F1B execution simulator ("actual" runs).
//! * [`audit`] — static invariant analysis over the primitive table,
//!   transforms, perf model and search traces.
//! * [`serve`] — long-lived TCP search daemon with a cross-request
//!   profile cache (wire contract in `docs/SERVER.md`).
//!
//! # Quickstart
//!
//! ```
//! use aceso::prelude::*;
//!
//! // A small GPT on a 1×4-GPU simulated cluster.
//! let model = aceso::model::zoo::gpt3_custom("demo", 4, 512, 8, 256, 8192, 64);
//! let cluster = ClusterSpec::v100(1, 4);
//! let db = ProfileDb::build(&model, &cluster);
//! let searcher = AcesoSearch::new(&model, &cluster, &db, SearchOptions::default());
//! let result = searcher.run().expect("search succeeds");
//! println!(
//!     "best predicted iteration time: {:.3}s over {} stages",
//!     result.best_time,
//!     result.best_config.stages.len()
//! );
//! ```

pub use aceso_audit as audit;
pub use aceso_baselines as baselines;
pub use aceso_cluster as cluster;
pub use aceso_config as config;
pub use aceso_core as search;
pub use aceso_model as model;
pub use aceso_obs as obs;
pub use aceso_perf as perf;
pub use aceso_profile as profile;
pub use aceso_runtime as runtime;
pub use aceso_serve as serve;
pub use aceso_util as util;

// Compile and run the README's quickstart code block as a doctest so the
// front-page example can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use aceso_cluster::ClusterSpec;
    pub use aceso_config::ParallelConfig;
    pub use aceso_core::{AcesoSearch, SearchOptions};
    pub use aceso_model::{ModelGraph, Precision};
    pub use aceso_perf::PerfModel;
    pub use aceso_profile::ProfileDb;
    pub use aceso_runtime::Simulator;
}
