//! Aceso-rs: a Rust reproduction of *Aceso: Efficient Parallel DNN Training
//! through Iterative Bottleneck Alleviation* (EuroSys 2024).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`model`] — operator-level DNN IR and the paper's model zoo.
//! * [`cluster`] — device/topology model and collective cost functions.
//! * [`config`] — parallel configuration representation (§3.1).
//! * [`profile`] — simulated operator profiler and reusable profile DB.
//! * [`perf`] — the analytic performance model (§3.3, Eq. 1 & 2).
//! * [`search`] — the Aceso search: primitives, heuristics, multi-hop (§3–4).
//! * [`obs`] — structured observability: events, counters, histograms
//!   (schema in `docs/OBSERVABILITY.md`).
//! * [`baselines`] — Megatron-LM grid, Alpa-like two-level DP, pure DP,
//!   random-primitive search.
//! * [`runtime`] — discrete-event 1F1B execution simulator ("actual" runs).
//! * [`audit`] — static invariant analysis over the primitive table,
//!   transforms, perf model and search traces.
//! * [`serve`] — long-lived TCP search daemon with a cross-request
//!   profile cache (wire contract in `docs/SERVER.md`).
//! * [`store`] — versioned, fingerprint-addressed on-disk store of
//!   profile databases; the cache's second tier (`docs/STORE.md`).
//! * [`chaos`] — deterministic whole-system chaos engine: seeded fault
//!   schedules, crash/restart daemon scenarios, standing oracles, and
//!   a shrinking fault-schedule explorer (`docs/RELIABILITY.md`).
//!
//! # Quickstart
//!
//! ```
//! use aceso::prelude::*;
//!
//! // A small GPT on a 1×4-GPU simulated cluster.
//! let model = aceso::model::zoo::gpt3_custom("demo", 4, 512, 8, 256, 8192, 64);
//! let cluster = ClusterSpec::v100(1, 4);
//! let db = ProfileDb::build(&model, &cluster);
//! let searcher = AcesoSearch::new(&model, &cluster, &db, SearchOptions::default());
//! let result = searcher.run().expect("search succeeds");
//! println!(
//!     "best predicted iteration time: {:.3}s over {} stages",
//!     result.best_time,
//!     result.best_config.stages.len()
//! );
//! ```

pub use aceso_audit as audit;
pub use aceso_baselines as baselines;
pub use aceso_chaos as chaos;
pub use aceso_cluster as cluster;
pub use aceso_config as config;
pub use aceso_core as search;
pub use aceso_model as model;
pub use aceso_obs as obs;
pub use aceso_perf as perf;
pub use aceso_profile as profile;
pub use aceso_runtime as runtime;
pub use aceso_serve as serve;
pub use aceso_store as store;
pub use aceso_util as util;

// Compile and run the README's quickstart code block as a doctest so the
// front-page example can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// Command-line surface shared between the binary and the doc checker.
///
/// The usage text lives here (rather than in `main.rs`) so the
/// documentation-consistency gate (`aceso-bench --bin doc_check`, run by
/// `ci.sh`) can cross-reference every `--flag` mentioned in `docs/*.md`
/// against the flags the binary actually advertises.
pub mod cli {
    /// The `aceso` binary's usage text: every subcommand, flag and
    /// default. `main.rs` prints this for `--help` and usage errors; the
    /// doc checker treats it as the registry of real CLI flags.
    pub const USAGE: &str = "\
usage: aceso [search] --model <name> [--gpus N] [--budget-secs S] [--stages P]
             [--zero] [--plan-out FILE] [--metrics-out FILE]
             [--events-out FILE] [--no-metrics] [--checkpoint FILE]
             [--resume FILE] [--checkpoint-every I] [--search-threads N]
       aceso audit [--smoke] [--full] [--json FILE] [--epsilon E]
             [--mutate M] [--metrics-out FILE]
       aceso serve [--addr HOST:PORT] [--workers N] [--cache-mb M]
             [--max-budget-secs S] [--max-gpus N] [--max-iterations I]
             [--max-deepnet-layers L] [--io-timeout-secs S]
             [--spool-dir DIR] [--checkpoint-every I]
             [--spool-ttl-secs S] [--reactor] [--max-connections N]
             [--store-dir DIR] [--store-budget-bytes N]
       aceso store (ls | verify | prune) --dir DIR
       aceso submit --addr HOST:PORT (--model <name> [--gpus N] [--stages P]
             [--zero] [--iterations I] [--budget-secs S] [--seed K]
             [--search-threads N] [--request-id ID] [--retries N]
             [--retry-deadline-secs S] [--plan-out FILE]
             [--metrics-out FILE] [--events-out FILE]
             | --stats | --shutdown)
       aceso chaos run --seed-range A..B [--mutate M] [--trace-out FILE]
       aceso chaos replay FILE
       aceso obs-diff A.json B.json

models: gpt3-{0.35b,1.3b,2.6b,6.7b,13b}, t5-{0.77b,3b,6b,11b,22b},
        wresnet-{0.5b,2b,4b,6.8b,13b}, deepnet-<layers>l
flags:
  --gpus N          simulated V100 count (default 8; ≤8 per node)
  --budget-secs S   search wall-clock budget (default 30)
  --stages P        pin the pipeline stage count (default: search 1..)
  --zero            enable the ZeRO-1 extension primitives
  --plan-out FILE   write the per-rank execution plan as JSON
  --metrics-out FILE  write the metric snapshot as JSON (see
                      docs/OBSERVABILITY.md for the schema)
  --events-out FILE   write the structured event stream as JSONL
  --no-metrics      disable observability entirely (skips the summary
                    table; conflicts with --metrics-out/--events-out)
  --checkpoint FILE   periodically write a resumable search checkpoint
                      (atomic JSON snapshot; removed on completion)
  --resume FILE       resume a search from a checkpoint; an unusable or
                      incompatible checkpoint warns and searches fresh
  --checkpoint-every I  iterations between checkpoints (default 32)
  --search-threads N  worker threads for the frontier search within each
                    stage count (default: $ACESO_SEARCH_THREADS, else 1;
                    clamped to 1..=64). Results are bit-identical at any
                    setting — see docs/SEARCH.md

audit: run the static invariant analyzers (primitive signatures,
transform validity, perf-model consistency, search-trace replay) over
the model-zoo corpus; exits non-zero if any finding is reported
  --smoke           audit a single small model (fast CI check); includes
                    the whole-system analyzers at reduced depth
  --full            also run the whole-system analyzers at full depth:
                    plan-safety proofs, protocol state-machine checking,
                    lock-order deadlock analysis (docs/ANALYSIS.md)
  --json FILE       also write the findings report as JSON
  --epsilon E       float comparison tolerance (default 1e-9)
  --mutate M        seed a bug injection for the mutation gates; the run
                    must exit 1 with the matching finding (one of:
                    mem-bound, reorder-frame, swap-lock-pair)
  --metrics-out FILE  write an observability metric snapshot with the
                    per-rule `audit_findings` counter family

serve: run the search daemon (wire contract in docs/SERVER.md)
  --addr HOST:PORT  listen address (default 127.0.0.1:7100; port 0 picks
                    an ephemeral port, printed as `listening on ...`)
  --workers N       max concurrent searches, excess rejected (default 4)
  --cache-mb M      profile-cache byte budget in MiB (default 256)
  --max-budget-secs S  reject requests with a larger wall-clock budget
                    (default 600; 0 = unlimited)
  --max-gpus N      reject requests simulating more GPUs (default 256;
                    0 = unlimited)
  --max-iterations I  reject requests with a larger per-stage-count
                    iteration budget (default 10000; 0 = unlimited)
  --max-deepnet-layers L  reject deeper deepnet-<N>l requests before the
                    graph is built (default 1024; 0 = unlimited)
  --io-timeout-secs S  per-connection read/write deadline; stalled peers
                    get a typed `timeout` error (default 30; 0 = none)
  --spool-dir DIR   spool per-request-id search checkpoints here so a
                    resubmitted request resumes after a crash or dropped
                    connection (docs/SERVER.md; default: no spooling)
  --checkpoint-every I  iterations between checkpoint spools (default 8)
  --spool-ttl-secs S  prune spooled checkpoints older than S seconds at
                    startup and periodically while serving (default: no
                    pruning; reclaims spools abandoned by crashed or
                    never-resubmitted requests)
  --reactor         serve every connection from one readiness-driven
                    event-loop thread instead of thread-per-connection:
                    idle clients cost no thread, requests may be
                    pipelined (responses tagged by request_id), and
                    dispatch into the worker pool is round-robin fair
                    (docs/SERVER.md)
  --max-connections N  reactor only: reject further connections with a
                    typed `connection-limit` error while N are open
                    (default 0 = unlimited)
  --store-dir DIR   persist built profile databases here and reload them
                    across restarts; a corrupt, truncated, foreign or
                    future-version entry degrades to a fresh build and a
                    `store_degraded` event (docs/STORE.md; default: no
                    persistent store)
  --store-budget-bytes N  on-disk byte budget for --store-dir; the
                    least-recently-used entries are evicted once the
                    total exceeds N (default 268435456)

store: inspect or repair a --store-dir directory (docs/STORE.md)
  ls                list every store entry with size, schema version,
                    entry count and status
  verify            exit 1 if any entry would degrade when loaded
                    (corrupt, truncated, foreign or future-version);
                    leftover temp files are not findings
  prune             delete undecodable entries and abandoned temp files
  --dir DIR         the store directory to operate on (required)

submit: send one search to a daemon and collect the streamed response
  --iterations I    per-stage-count iteration budget (default 48); the
                    deterministic budget — results are reproducible when
                    no --budget-secs is given
  --seed K          search RNG seed (default 0xACE50)
  --search-threads N  ask the daemon to run the frontier search with N
                    worker threads (0 = daemon default; the daemon caps
                    the value at 16; never changes results)
  --request-id ID   idempotency key: lets a --spool-dir daemon resume
                    this search if it is interrupted and resubmitted
  --retries N       retry transient failures (busy, timeout, dropped
                    connection) up to N times with jittered backoff
  --retry-deadline-secs S  total wall-clock budget across all retry
                    attempts and both backoff clocks; once exceeded the
                    client stops with a typed `retry-deadline` error
                    (default: no deadline)
  --stats           print the daemon's server-level metric snapshot
  --shutdown        ask the daemon to drain in-flight work and exit

chaos: run end-to-end daemon scenarios under seeded fault schedules —
injected filesystem faults, network fault-proxy modes and worker panics
— and check the standing oracles after every run (no torn store entry,
clean `aceso store verify`, bit-identical responses, typed degrade
events; docs/RELIABILITY.md). A violating schedule is shrunk to a
minimal replayable JSON trace
  --seed-range A..B   run one scenario per seed in [A, B) (required)
  --mutate M        seed a bug injection for the mutation gate; the run
                    must exit 1 with a shrunk trace (one of:
                    store-direct-write)
  --trace-out FILE  write the shrunk violating trace here (default:
                    chaos-trace.json next to the store dir)
  replay FILE       re-run one recorded trace and re-check the oracles;
                    exits 1 if the violation reproduces

obs-diff: print counter deltas and histogram shifts between two metric
snapshots; exits 2 when the snapshots disagree on schema_version";
}

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use aceso_cluster::ClusterSpec;
    pub use aceso_config::ParallelConfig;
    pub use aceso_core::{AcesoSearch, SearchOptions};
    pub use aceso_model::{ModelGraph, Precision};
    pub use aceso_perf::PerfModel;
    pub use aceso_profile::ProfileDb;
    pub use aceso_runtime::Simulator;
}
