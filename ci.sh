#!/bin/sh
# CI gate: formatting, lints (warnings are errors), the tier-1
# build + test cycle in both invariant modes, and an audit smoke run
# that must come back with zero findings.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features aceso-core/debug-invariants -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> tests with debug-invariants enabled"
cargo test -q --workspace --features aceso-core/debug-invariants

echo "==> audit smoke run"
cargo run --release --quiet --bin aceso -- audit --smoke

echo "CI OK"
