#!/bin/sh
# CI gate: formatting, lints (warnings are errors), rustdoc (warnings
# are errors), a documentation-consistency gate (every flag, schema
# token and schema version mentioned in docs/*.md must still exist in
# the code), the tier-1 build + test cycle in both invariant modes,
# the full-corpus differential perf-equivalence sweep (incremental vs
# from-scratch evaluation must stay bit-identical), the full
# whole-system static verifier (plan-safety proofs, protocol
# state-machine checking, lock-order analysis — zero findings, report
# archived under results/) plus its mutation gates (each seeded bug
# injection must be caught), an observability smoke run
# whose artifacts must validate against the documented schema, a serve
# daemon round-trip, a crash-recovery smoke (SIGKILL the daemon
# mid-search, restart it, resubmit — the resumed event stream must be
# byte-identical to an uninterrupted reference), a store smoke (SIGKILL
# a --store-dir daemon mid-run — `aceso store verify` must find no torn
# entry, and a restarted daemon must serve off the surviving store), a
# store-backed restart bench smoke, a chaos smoke (a seeded window of
# whole-system fault schedules must violate no standing oracle, and the
# store-direct-write mutation must be caught, shrunk to a replayable
# trace, and reproduce on replay — docs/RELIABILITY.md), and a perf
# regression gate against the committed BENCH_search.json (median of
# three runs; mean evaluation latency must not regress by more than
# 1.5x; store-backed restart latency must stay within 1.1x of a warm
# cache hit).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features aceso-core/debug-invariants -- -D warnings

echo "==> cargo doc (workspace, no deps, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> doc consistency: docs/*.md vs CLI usage + obs schema registry"
cargo run --release --quiet -p aceso-bench --bin doc_check

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> tests with debug-invariants enabled"
cargo test -q --workspace --features aceso-core/debug-invariants

echo "==> differential perf-equivalence sweep (full corpus)"
cargo test -q --release --test perf_equivalence -- --include-ignored

echo "==> audit: full whole-system verifier (report archived in results/)"
cargo run --release --quiet --bin aceso -- audit --full \
    --json results/audit-report.json --metrics-out results/audit-metrics.json

echo "==> audit mutation gates: every seeded bug injection must be caught"
for MUT in mem-bound reorder-frame swap-lock-pair; do
    MUT_TMP=$(mktemp)
    if cargo run --release --quiet --bin aceso -- audit --smoke \
        --mutate "$MUT" --json "$MUT_TMP" >/dev/null 2>&1; then
        echo "mutation $MUT was NOT caught"; rm -f "$MUT_TMP"; exit 1
    fi
    grep -q '"clean": false' "$MUT_TMP" || {
        echo "mutation $MUT exited non-zero but reported no JSON finding"
        rm -f "$MUT_TMP"; exit 1; }
    rm -f "$MUT_TMP"
    echo "    $MUT: caught"
done

echo "==> optional ThreadSanitizer stage (enable with ACESO_TSAN=1)"
if [ "${ACESO_TSAN:-0}" = "1" ]; then
    if rustup toolchain list 2>/dev/null | grep -q nightly &&
        rustup component list --toolchain nightly 2>/dev/null |
            grep -q 'rust-src (installed)'; then
        TSAN_TARGET=$(rustc -vV | sed -n 's/^host: //p')
        RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q \
            -Zbuild-std --target "$TSAN_TARGET" -p aceso-serve --lib
    else
        echo "    skipped: nightly toolchain with rust-src not installed"
    fi
else
    echo "    skipped (set ACESO_TSAN=1 to run the serve suite under TSan)"
fi

echo "==> observability smoke run (schema-validated metrics + events)"
OBS_TMP=$(mktemp -d)
cargo run --release --quiet --bin aceso -- search \
    --model gpt3-0.35b --gpus 4 --budget-secs 2 \
    --metrics-out "$OBS_TMP/metrics.json" \
    --events-out "$OBS_TMP/events.jsonl" >/dev/null
cargo run --release --quiet -p aceso-bench --bin obs_check -- \
    "$OBS_TMP/metrics.json" "$OBS_TMP/events.jsonl"
rm -rf "$OBS_TMP"

echo "==> serve smoke: daemon round-trip with schema-validated artifacts"
SERVE_TMP=$(mktemp -d)
SERVE_PID=""
# Kill the daemon and drop the temp dir even when a later step trips
# set -e mid-stage.
trap 'kill "$SERVE_PID" 2>/dev/null || :; rm -rf "$SERVE_TMP"' EXIT
cargo run --release --quiet --bin aceso -- serve \
    --addr 127.0.0.1:0 --workers 2 >"$SERVE_TMP/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_TMP/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "daemon never reported its address"; exit 1; }
cargo run --release --quiet --bin aceso -- submit \
    --addr "$ADDR" --model gpt3-0.35b --gpus 4 --iterations 24 \
    --metrics-out "$SERVE_TMP/metrics.json" \
    --events-out "$SERVE_TMP/events.jsonl" >/dev/null
cargo run --release --quiet -p aceso-bench --bin obs_check -- \
    "$SERVE_TMP/metrics.json" "$SERVE_TMP/events.jsonl"
cargo run --release --quiet --bin aceso -- submit --addr "$ADDR" --shutdown >/dev/null
wait "$SERVE_PID"
grep -q "daemon drained" "$SERVE_TMP/serve.log" || {
    echo "daemon did not drain cleanly"; exit 1; }
trap - EXIT
rm -rf "$SERVE_TMP"

echo "==> crash-recovery smoke: SIGKILL mid-search, restart, resume"
CRASH_TMP=$(mktemp -d)
CRASH_PID=""
trap 'kill -9 "$CRASH_PID" 2>/dev/null || :; rm -rf "$CRASH_TMP"' EXIT
# Run the release binary directly (not via cargo) so the SIGKILL below
# lands on the daemon itself, exactly like a crash or OOM kill would.
target/release/aceso serve --addr 127.0.0.1:0 --workers 2 \
    --spool-dir "$CRASH_TMP/spool" --checkpoint-every 2 \
    >"$CRASH_TMP/serve.log" &
CRASH_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$CRASH_TMP/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "crash daemon never reported its address"; exit 1; }
# Reference: the same request, uninterrupted, no spooling involved.
target/release/aceso submit --addr "$ADDR" \
    --model gpt3-0.35b --gpus 4 --iterations 24 \
    --events-out "$CRASH_TMP/ref-events.jsonl" >/dev/null
# Crash run: submit with a request id in the background, SIGKILL the
# daemon the moment a checkpoint spool appears on disk.
target/release/aceso submit --addr "$ADDR" \
    --model gpt3-0.35b --gpus 4 --iterations 24 --request-id ci-crash \
    >/dev/null 2>&1 &
SUBMIT_PID=$!
SPOOL=""
for _ in $(seq 1 100); do
    SPOOL=$(find "$CRASH_TMP/spool" -name 'ci-crash-*.ckpt' 2>/dev/null | head -n 1)
    [ -n "$SPOOL" ] && break
    sleep 0.05
done
[ -n "$SPOOL" ] || { echo "no checkpoint spool appeared before the search finished"; exit 1; }
kill -9 "$CRASH_PID"
wait "$SUBMIT_PID" 2>/dev/null || :  # the client lost its daemon — expected
# Restart the daemon on the same spool dir and resubmit the same id:
# the search must resume from the spooled checkpoint and the collected
# event stream must be byte-identical to the uninterrupted reference.
target/release/aceso serve --addr 127.0.0.1:0 --workers 2 \
    --spool-dir "$CRASH_TMP/spool" --checkpoint-every 2 \
    >"$CRASH_TMP/serve2.log" &
CRASH_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$CRASH_TMP/serve2.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted daemon never reported its address"; exit 1; }
target/release/aceso submit --addr "$ADDR" \
    --model gpt3-0.35b --gpus 4 --iterations 24 --request-id ci-crash --retries 3 \
    --events-out "$CRASH_TMP/crash-events.jsonl" >/dev/null
cmp "$CRASH_TMP/ref-events.jsonl" "$CRASH_TMP/crash-events.jsonl" || {
    echo "resumed event stream diverged from the uninterrupted reference"; exit 1; }
target/release/aceso submit --addr "$ADDR" --stats >"$CRASH_TMP/stats.json"
grep -q '"search_resumed": *1' "$CRASH_TMP/stats.json" || {
    echo "restarted daemon did not count the resume"; exit 1; }
grep -q '"client_retries": *[1-9]' "$CRASH_TMP/stats.json" || {
    echo "restarted daemon did not count the client retry"; exit 1; }
target/release/aceso submit --addr "$ADDR" --shutdown >/dev/null
wait "$CRASH_PID"
trap - EXIT
rm -rf "$CRASH_TMP"

echo "==> reactor smoke: drain under load, then SIGKILL-mid-pipeline recovery"
REACT_TMP=$(mktemp -d)
REACT_PID=""
trap 'kill -9 "$REACT_PID" 2>/dev/null || :; rm -rf "$REACT_TMP"' EXIT
# Drain under load: shut the reactor down while a request is in
# flight — the daemon must finish the in-flight search, deliver its
# result, and only then report a clean drain (docs/SERVER.md).
target/release/aceso serve --addr 127.0.0.1:0 --workers 2 --reactor \
    >"$REACT_TMP/serve.log" &
REACT_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$REACT_TMP/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "reactor daemon never reported its address"; exit 1; }
target/release/aceso submit --addr "$ADDR" \
    --model gpt3-0.35b --gpus 4 --iterations 24 \
    --events-out "$REACT_TMP/drain-events.jsonl" >/dev/null &
SUBMIT_PID=$!
sleep 0.3
target/release/aceso submit --addr "$ADDR" --shutdown >/dev/null
wait "$SUBMIT_PID" || { echo "in-flight request lost during drain"; exit 1; }
[ -s "$REACT_TMP/drain-events.jsonl" ] || {
    echo "drained request returned no events"; exit 1; }
wait "$REACT_PID"
grep -q "daemon drained" "$REACT_TMP/serve.log" || {
    echo "reactor daemon did not drain cleanly"; exit 1; }
# SIGKILL mid-pipeline: same crash-recovery contract as the blocking
# front-end, but through the reactor's event loop and spool markers.
target/release/aceso serve --addr 127.0.0.1:0 --workers 2 --reactor \
    --spool-dir "$REACT_TMP/spool" --checkpoint-every 2 \
    >"$REACT_TMP/serve2.log" &
REACT_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$REACT_TMP/serve2.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "reactor crash daemon never reported its address"; exit 1; }
target/release/aceso submit --addr "$ADDR" \
    --model gpt3-0.35b --gpus 4 --iterations 24 \
    --events-out "$REACT_TMP/ref-events.jsonl" >/dev/null
target/release/aceso submit --addr "$ADDR" \
    --model gpt3-0.35b --gpus 4 --iterations 24 --request-id ci-reactor-crash \
    >/dev/null 2>&1 &
SUBMIT_PID=$!
SPOOL=""
for _ in $(seq 1 100); do
    SPOOL=$(find "$REACT_TMP/spool" -name 'ci-reactor-crash-*.ckpt' 2>/dev/null | head -n 1)
    [ -n "$SPOOL" ] && break
    sleep 0.05
done
[ -n "$SPOOL" ] || { echo "no checkpoint spool appeared before the search finished"; exit 1; }
kill -9 "$REACT_PID"
wait "$SUBMIT_PID" 2>/dev/null || :  # the client lost its daemon — expected
target/release/aceso serve --addr 127.0.0.1:0 --workers 2 --reactor \
    --spool-dir "$REACT_TMP/spool" --checkpoint-every 2 \
    >"$REACT_TMP/serve3.log" &
REACT_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$REACT_TMP/serve3.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted reactor daemon never reported its address"; exit 1; }
target/release/aceso submit --addr "$ADDR" \
    --model gpt3-0.35b --gpus 4 --iterations 24 --request-id ci-reactor-crash \
    --retries 3 --events-out "$REACT_TMP/crash-events.jsonl" >/dev/null
cmp "$REACT_TMP/ref-events.jsonl" "$REACT_TMP/crash-events.jsonl" || {
    echo "reactor resumed event stream diverged from the reference"; exit 1; }
target/release/aceso submit --addr "$ADDR" --stats >"$REACT_TMP/stats.json"
grep -q '"search_resumed": *1' "$REACT_TMP/stats.json" || {
    echo "restarted reactor daemon did not count the resume"; exit 1; }
target/release/aceso submit --addr "$ADDR" --shutdown >/dev/null
wait "$REACT_PID"
trap - EXIT
rm -rf "$REACT_TMP"

echo "==> fleet smoke: 64 mixed clients against an in-process reactor"
FLEET_TMP=$(mktemp -d)
cargo run --release --quiet -p aceso-bench --bin serve_bench -- \
    fleet 64 "$FLEET_TMP/fleet.json" >/dev/null
grep -q '"errors": 0' "$FLEET_TMP/fleet.json" || {
    echo "fleet smoke recorded client errors"; exit 1; }
rm -rf "$FLEET_TMP"

echo "==> store smoke: SIGKILL mid-run, the store never shows a torn entry"
STORE_TMP=$(mktemp -d)
STORE_PID=""
trap 'kill -9 "$STORE_PID" 2>/dev/null || :; rm -rf "$STORE_TMP"' EXIT
target/release/aceso serve --addr 127.0.0.1:0 --workers 2 \
    --store-dir "$STORE_TMP/store" >"$STORE_TMP/serve.log" &
STORE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$STORE_TMP/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "store daemon never reported its address"; exit 1; }
# The first submit populates the store; the second is still in flight
# when the daemon is SIGKILLed, so the kill can land mid-write.
# INV-STORE-ATOMIC: whatever the timing, verify must find only clean
# entries (leftover temp files are not findings).
target/release/aceso submit --addr "$ADDR" \
    --model gpt3-0.35b --gpus 4 --iterations 8 >/dev/null
target/release/aceso submit --addr "$ADDR" \
    --model t5-0.77b --gpus 4 --iterations 8 >/dev/null 2>&1 &
SUBMIT_PID=$!
sleep 0.2
kill -9 "$STORE_PID"
wait "$SUBMIT_PID" 2>/dev/null || :  # the client lost its daemon — expected
target/release/aceso store verify --dir "$STORE_TMP/store" || {
    echo "store verify found a torn entry after SIGKILL"; exit 1; }
# A fresh daemon on the surviving store serves the first request off a
# store hit, not a re-profile.
target/release/aceso serve --addr 127.0.0.1:0 --workers 2 \
    --store-dir "$STORE_TMP/store" >"$STORE_TMP/serve2.log" &
STORE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$STORE_TMP/serve2.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted store daemon never reported its address"; exit 1; }
target/release/aceso submit --addr "$ADDR" \
    --model gpt3-0.35b --gpus 4 --iterations 8 >/dev/null
target/release/aceso submit --addr "$ADDR" --stats >"$STORE_TMP/stats.json"
grep -q '"store_hits": *1' "$STORE_TMP/stats.json" || {
    echo "restarted daemon did not serve off the store"; exit 1; }
target/release/aceso submit --addr "$ADDR" --shutdown >/dev/null
wait "$STORE_PID"
trap - EXIT
rm -rf "$STORE_TMP"

echo "==> chaos smoke: seeded fault schedules clean, mutation gate trips"
CHAOS_TMP=$(mktemp -d)
# A fixed seed window of whole-system scenarios (filesystem faults,
# network cuts, worker panics, concurrent generations) must violate no
# standing oracle (docs/RELIABILITY.md, INV-CHAOS-ORACLE).
target/release/aceso chaos run --seed-range 0..60 \
    --trace-out "$CHAOS_TMP/trace.json"
# Mutation gate: with the store's temp+rename discipline disabled
# (INV-STORE-ATOMIC deliberately broken) the same window must catch a
# torn entry and shrink it to a replayable trace (INV-CHAOS-SHRINK).
if target/release/aceso chaos run --seed-range 0..60 \
    --mutate store-direct-write \
    --trace-out "$CHAOS_TMP/mutant.json" >/dev/null; then
    echo "store-direct-write mutation was NOT caught"; rm -rf "$CHAOS_TMP"; exit 1
fi
[ -s "$CHAOS_TMP/mutant.json" ] || {
    echo "mutant chaos run wrote no trace"; exit 1; }
grep -q '"direct_writes": true' "$CHAOS_TMP/mutant.json" || {
    echo "mutant trace lost the mutation switch"; exit 1; }
# The shrunk trace must reproduce deterministically on replay
# (INV-CHAOS-DETERMINISM: replay exits non-zero iff it reproduces).
if target/release/aceso chaos replay "$CHAOS_TMP/mutant.json" >/dev/null; then
    echo "shrunk mutant trace did not reproduce on replay"; rm -rf "$CHAOS_TMP"; exit 1
fi
rm -rf "$CHAOS_TMP"

echo "==> restart smoke: store-backed restart stays in the warm-hit envelope"
RESTART_TMP=$(mktemp -d)
cargo run --release --quiet -p aceso-bench --bin serve_bench -- \
    restart "$RESTART_TMP/restart.json" >/dev/null
grep -q '"restart_us"' "$RESTART_TMP/restart.json" || {
    echo "restart smoke wrote no figures"; exit 1; }
rm -rf "$RESTART_TMP"

echo "==> perf regression gate (vs committed BENCH_search.json)"
cargo run --release --quiet -p aceso-bench --bin obs_check

echo "CI OK"
