#!/bin/sh
# CI gate: formatting, lints (warnings are errors), rustdoc (warnings
# are errors), the tier-1 build + test cycle in both invariant modes,
# the full-corpus differential perf-equivalence sweep (incremental vs
# from-scratch evaluation must stay bit-identical), an audit smoke run
# that must come back with zero findings, an observability smoke run
# whose artifacts must validate against the documented schema, and a
# perf regression gate against the committed BENCH_search.json (median
# of three runs; mean evaluation latency must not regress by more than
# 1.5x).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features aceso-core/debug-invariants -- -D warnings

echo "==> cargo doc (workspace, no deps, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> tests with debug-invariants enabled"
cargo test -q --workspace --features aceso-core/debug-invariants

echo "==> differential perf-equivalence sweep (full corpus)"
cargo test -q --release --test perf_equivalence -- --include-ignored

echo "==> audit smoke run"
cargo run --release --quiet --bin aceso -- audit --smoke

echo "==> observability smoke run (schema-validated metrics + events)"
OBS_TMP=$(mktemp -d)
cargo run --release --quiet --bin aceso -- search \
    --model gpt3-0.35b --gpus 4 --budget-secs 2 \
    --metrics-out "$OBS_TMP/metrics.json" \
    --events-out "$OBS_TMP/events.jsonl" >/dev/null
cargo run --release --quiet -p aceso-bench --bin obs_check -- \
    "$OBS_TMP/metrics.json" "$OBS_TMP/events.jsonl"
rm -rf "$OBS_TMP"

echo "==> serve smoke: daemon round-trip with schema-validated artifacts"
SERVE_TMP=$(mktemp -d)
SERVE_PID=""
# Kill the daemon and drop the temp dir even when a later step trips
# set -e mid-stage.
trap 'kill "$SERVE_PID" 2>/dev/null || :; rm -rf "$SERVE_TMP"' EXIT
cargo run --release --quiet --bin aceso -- serve \
    --addr 127.0.0.1:0 --workers 2 >"$SERVE_TMP/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_TMP/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "daemon never reported its address"; exit 1; }
cargo run --release --quiet --bin aceso -- submit \
    --addr "$ADDR" --model gpt3-0.35b --gpus 4 --iterations 24 \
    --metrics-out "$SERVE_TMP/metrics.json" \
    --events-out "$SERVE_TMP/events.jsonl" >/dev/null
cargo run --release --quiet -p aceso-bench --bin obs_check -- \
    "$SERVE_TMP/metrics.json" "$SERVE_TMP/events.jsonl"
cargo run --release --quiet --bin aceso -- submit --addr "$ADDR" --shutdown >/dev/null
wait "$SERVE_PID"
grep -q "daemon drained" "$SERVE_TMP/serve.log" || {
    echo "daemon did not drain cleanly"; exit 1; }
trap - EXIT
rm -rf "$SERVE_TMP"

echo "==> perf regression gate (vs committed BENCH_search.json)"
cargo run --release --quiet -p aceso-bench --bin obs_check

echo "CI OK"
