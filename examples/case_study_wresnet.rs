//! §5.4 case study 2 — Wide-ResNet 6.8B on 16 GPUs.
//!
//! The paper: both Alpa and Aceso split the model into 3 pipeline stages
//! (4, 4, 8 GPUs), but in the 8-GPU stage Alpa applies uniform 8-way
//! tensor parallelism to every operator while Aceso mixes 2-way data
//! parallelism with 4-way tensor parallelism for the operators that do not
//! need deep sharding — because fragmenting convolution channels 8 ways
//! hurts kernel efficiency.
//!
//! Run with: `cargo run --release --example case_study_wresnet`

use aceso::baselines::{AlpaOptions, AlpaSearch};
use aceso::model::zoo::{wide_resnet, WideResnetSize};
use aceso::prelude::*;

fn show(label: &str, config: &aceso::config::ParallelConfig, time: f64) {
    println!("\n{label}: predicted iteration {time:.2} s");
    print!("{}", aceso::config::describe(config, None));
}

fn main() {
    let model = wide_resnet(WideResnetSize::S6_8b);
    let cluster = ClusterSpec::v100(2, 8);
    println!(
        "Wide-ResNet 6.8B ({} ops, {:.2} B params) on 16 × V100-32GB",
        model.len(),
        model.total_params() as f64 / 1e9
    );
    let db = ProfileDb::build(&model, &cluster);

    let aceso = AcesoSearch::new(
        &model,
        &cluster,
        &db,
        SearchOptions {
            max_iterations: 64,
            time_budget: Some(std::time::Duration::from_secs(20)),
            ..SearchOptions::default()
        },
    )
    .run()
    .expect("aceso finds a configuration");
    show("Aceso", &aceso.best_config, aceso.best_time);
    let shape = aceso::config::shape(&aceso.best_config);
    println!(
        "  -> in-stage mixed tp/dp settings: {}",
        shape.mixed_parallelism
    );

    match AlpaSearch::new(&model, &cluster, &db, AlpaOptions::default()).run() {
        Ok(alpa) => {
            show("Alpa", &alpa.config, alpa.iteration_time);
            println!(
                "  -> Alpa's intra-op pass chooses one uniform plan per stage\n\
                 (and its comm-only estimator cannot see the compute cost of\n\
                 deep channel splits)."
            );
            println!(
                "\nAceso/Alpa predicted speedup: {:.2}x",
                alpa.iteration_time / aceso.best_time
            );
        }
        Err(e) => println!("alpa failed: {e}"),
    }
}
