//! §5.4 case study 1 — GPT-3 1.3B on 4 GPUs.
//!
//! The paper: Alpa and Megatron-LM pick 4-way data parallelism with
//! recomputation enabled everywhere; Aceso instead finds a pipeline with
//! *uneven* stages (fewer operators in the first and last stages, because
//! the first pays recompute and the last pays the loss computation) and
//! recomputes only a few operators — a configuration outside both
//! baselines' search spaces.
//!
//! Run with: `cargo run --release --example case_study_gpt`

use aceso::baselines::{AlpaOptions, AlpaSearch, MegatronOptions, MegatronSearch};
use aceso::model::zoo::{gpt3, Gpt3Size};
use aceso::prelude::*;

fn show(label: &str, config: &aceso::config::ParallelConfig, time: f64) {
    println!("\n{label}: predicted iteration {time:.2} s");
    print!("{}", aceso::config::describe(config, None));
}

fn main() {
    let model = gpt3(Gpt3Size::S1_3b);
    let cluster = ClusterSpec::v100(1, 4);
    println!(
        "GPT-3 1.3B ({} ops, {:.2} B params) on 4 × V100-32GB",
        model.len(),
        model.total_params() as f64 / 1e9
    );
    let db = ProfileDb::build(&model, &cluster);

    let aceso = AcesoSearch::new(
        &model,
        &cluster,
        &db,
        SearchOptions {
            max_iterations: 48,
            time_budget: Some(std::time::Duration::from_secs(15)),
            ..SearchOptions::default()
        },
    )
    .run()
    .expect("aceso finds a configuration");
    show("Aceso", &aceso.best_config, aceso.best_time);

    let uneven = {
        let sizes: Vec<usize> = aceso
            .best_config
            .stages
            .iter()
            .map(aceso::config::StageConfig::num_ops)
            .collect();
        sizes.windows(2).any(|w| w[0] != w[1])
    };
    let partial_rc = aceso.best_config.stages.iter().any(|s| {
        let rc = s.num_recomputed();
        rc > 0 && rc < s.num_ops()
    });
    println!("  -> uneven stages: {uneven}; partial (op-level) recomputation: {partial_rc}");

    if let Some(meg) = MegatronSearch::new(&model, &cluster, &db, MegatronOptions::default()).run()
    {
        show("Megatron-LM (global grid)", &meg.config, meg.iteration_time);
    }
    if let Ok(alpa) = AlpaSearch::new(&model, &cluster, &db, AlpaOptions::default()).run() {
        show("Alpa (two-level DP)", &alpa.config, alpa.iteration_time);
    }

    println!(
        "\nThe baselines are locked to uniform stages and all-or-nothing\n\
         recomputation; Aceso's primitive search reaches the uneven,\n\
         partially-recomputed configuration the paper's case study shows."
    );
}
