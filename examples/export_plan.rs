//! Exporting artifacts for a real deployment: the per-rank execution plan
//! (what a Megatron-style runtime would consume) and a Chrome-tracing
//! timeline of the simulated iteration (open in `chrome://tracing` or
//! Perfetto to see the 1F1B interleaving and pipeline bubbles).
//!
//! Run with: `cargo run --release --example export_plan`

use aceso::prelude::*;
use aceso::runtime::{to_chrome_trace, ExecutionPlan};

fn main() {
    let model = aceso::model::zoo::gpt3_custom("export-gpt", 8, 1024, 16, 1024, 32000, 64);
    let cluster = ClusterSpec::v100(1, 8);
    let db = ProfileDb::build(&model, &cluster);

    let result = AcesoSearch::new(
        &model,
        &cluster,
        &db,
        SearchOptions {
            max_iterations: 24,
            // Pin a 4-stage pipeline so the exported plan and timeline
            // show pipelining (a single stage is optimal for this small
            // model, but makes a boring trace).
            stage_counts: Some(vec![4]),
            ..SearchOptions::default()
        },
    )
    .run()
    .expect("search finds a configuration");
    println!("found configuration:");
    print!(
        "{}",
        aceso::config::describe(&result.best_config, Some(&model))
    );

    // 1. Per-rank execution plan.
    let plan = ExecutionPlan::build(&model, &cluster, &result.best_config)
        .expect("valid config yields a plan");
    let plan_path = std::env::temp_dir().join("aceso_plan.json");
    std::fs::write(&plan_path, plan.to_json()).expect("plan writes");
    println!(
        "\nwrote execution plan for {} ranks ({} microbatches/iter) to {}",
        plan.ranks.len(),
        plan.num_microbatches,
        plan_path.display()
    );
    let r0 = &plan.ranks[0];
    println!(
        "rank 0: stage {}, {} op shards, tp group {:?}, sends to {:?}",
        r0.stage,
        r0.ops.len(),
        r0.tp_group,
        r0.send_to
    );

    // 2. Simulated-iteration timeline in Chrome tracing format.
    let sim = Simulator::with_defaults(&model, &cluster, &db);
    let (report, events) = sim
        .execute_traced(&result.best_config)
        .expect("config executes");
    let trace_path = std::env::temp_dir().join("aceso_timeline.json");
    std::fs::write(&trace_path, to_chrome_trace(&events)).expect("trace writes");
    println!(
        "\nsimulated iteration {:.3} s ({} tasks) — timeline at {}",
        report.iteration_time,
        events.len(),
        trace_path.display()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev to see the 1F1B bubbles");
}
