//! Quickstart: search a parallel configuration for a small GPT model on a
//! simulated 4-GPU node, then execute it on the runtime simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use aceso::prelude::*;

fn main() {
    // 1. A model from the zoo (a scaled-down GPT so the example runs in
    //    seconds) and the cluster to train it on.
    let model = aceso::model::zoo::gpt3_custom(
        "quickstart-gpt", // name
        8,                // transformer layers
        1024,             // hidden size
        16,               // attention heads
        1024,             // sequence length
        32000,            // vocabulary
        128,              // global batch size
    );
    let cluster = ClusterSpec::v100(1, 4);
    println!(
        "model `{}`: {} operators, {:.2} B parameters",
        model.name,
        model.len(),
        model.total_params() as f64 / 1e9
    );

    // 2. Profile the operators once; the database is reusable.
    let db = ProfileDb::build(&model, &cluster);
    println!(
        "profiled {} kernel grid points (simulated profiling cost: {:.1} s)",
        db.len(),
        db.simulated_profiling_seconds()
    );

    // 3. Run the Aceso search (iterative bottleneck alleviation).
    let options = SearchOptions {
        max_iterations: 32,
        ..SearchOptions::default()
    };
    let result = AcesoSearch::new(&model, &cluster, &db, options)
        .run()
        .expect("search finds a configuration");
    println!(
        "searched {} configurations in {:.2?}; best predicted iteration {:.3} s",
        result.explored, result.wall_time, result.best_time
    );
    for (i, stage) in result.best_config.stages.iter().enumerate() {
        let para = stage.ops.first().expect("stages are non-empty");
        println!(
            "  stage {i}: ops {:>3}..{:<3} on {} GPU(s), tp={} dp={}, {}/{} ops recomputed",
            stage.op_start,
            stage.op_end,
            stage.gpus,
            para.tp,
            para.dp,
            stage.num_recomputed(),
            stage.num_ops()
        );
    }

    // 4. Execute the best configuration on the event-driven simulator.
    let report = Simulator::with_defaults(&model, &cluster, &db)
        .execute(&result.best_config)
        .expect("config executes");
    println!(
        "executed: iteration {:.3} s, throughput {:.1} samples/s, \
         {:.1} TFLOPS/GPU, peak memory {:.1} GB (fits: {})",
        report.iteration_time,
        report.throughput,
        report.tflops_per_gpu,
        report.peak_memory as f64 / 1e9,
        report.ok()
    );

    // 5. Compare prediction and execution (the Exp#8 question).
    let pm = PerfModel::new(&model, &cluster, &db);
    let predicted = pm
        .evaluate(&result.best_config)
        .expect("valid config")
        .iteration_time;
    println!(
        "prediction error: {:.2}%",
        (predicted - report.iteration_time).abs() / report.iteration_time * 100.0
    );
}
