//! Elastic reconfiguration — the introduction's motivating scenario.
//!
//! "Search overhead can be a huge burden when quick reconfiguration is
//! needed, e.g., in a shared cluster with frequent changes in resources."
//! This example trains on 8 GPUs, loses half the cluster, and re-searches
//! a configuration for the remaining 4 GPUs in seconds — then gets the
//! allocation back and **warm-starts** from the checkpoint the preempted
//! 8-GPU search left behind instead of paying for the search again:
//!
//! * phase 1 (8 GPUs) runs the search in checkpointed slices, exactly as
//!   a `--spool-dir` daemon would, and keeps the snapshot taken at the
//!   preemption point;
//! * phase 2 (4 GPUs) cannot bit-resume an 8-GPU checkpoint (the cluster
//!   fingerprint differs), but it warm-starts from the previous search's
//!   *trace*: pinning the stage count the 8-GPU search converged on
//!   shrinks the search space, and the saved wall time is measured
//!   against an unpinned search;
//! * phase 3 (8 GPUs restored) resumes the phase-1 checkpoint and prints
//!   the iterations and wall time it skipped — the resumed result is
//!   bit-identical to the uninterrupted run (`SearchCheckpoint`'s core
//!   contract).
//!
//! Run with: `cargo run --release --example elastic_reconfigure`

use aceso::prelude::*;
use aceso::search::{SearchCheckpoint, SearchResult, SearchStep};
use std::time::Duration;

fn options() -> SearchOptions {
    SearchOptions {
        max_iterations: 32,
        time_budget: Some(Duration::from_secs(10)),
        ..SearchOptions::default()
    }
}

fn report_line(gpus: usize, label: &str, elapsed: Duration, result: &SearchResult) {
    println!(
        "  {gpus} GPUs ({label}): {:.2?} ({} configs) -> {} stages, predicted {:.3} s/iter",
        elapsed,
        result.explored,
        result.best_config.num_stages(),
        result.best_time,
    );
}

fn main() {
    let model = aceso::model::zoo::gpt3_custom("elastic-gpt", 12, 1536, 16, 1024, 32000, 256);
    println!(
        "model `{}` ({:.2} B params) in a shared cluster:",
        model.name,
        model.total_params() as f64 / 1e9
    );

    // Phase 1: full allocation, searched in checkpointed slices. The
    // profile databases are per-(model, cluster) but cheap to rebuild; a
    // real deployment would persist them with `ProfileDb::to_json`.
    println!("phase 1: full allocation (checkpointing every 8 iterations)");
    let cluster8 = ClusterSpec::v100_gpus(8);
    let db8 = ProfileDb::build(&model, &cluster8);
    let search8 = AcesoSearch::new(&model, &cluster8, &db8, options());
    let t0 = std::time::Instant::now();
    let mut preemption_snapshot: Option<Box<SearchCheckpoint>> = None;
    let mut bound = 8;
    let mut step = search8.run_partial(true, bound).expect("search starts");
    let (full8, _) = loop {
        match step {
            SearchStep::Done(result, report) => break (result, report),
            SearchStep::Paused(ckpt) => {
                bound += 8;
                step = search8
                    .resume_partial(true, &ckpt, Some(bound))
                    .expect("resume");
                // This is the state a preemption at this instant would
                // have left on disk.
                preemption_snapshot = Some(ckpt);
            }
        }
    };
    let full8_elapsed = t0.elapsed();
    report_line(8, "cold search", full8_elapsed, &full8);
    let snapshot = *preemption_snapshot.expect("a 32-iteration search pauses at least once");
    println!(
        "  preemption snapshot: {} iterations ({:.2} s of search) banked",
        snapshot.iterations_done(),
        snapshot.elapsed_secs()
    );

    // Phase 2: the cluster shrinks. An 8-GPU checkpoint cannot bit-resume
    // on 4 GPUs — resume demands the same cluster fingerprint — so the
    // warm start uses the previous search's *trace* instead: pin the
    // stage count it converged on and skip the other stage-count threads.
    println!("phase 2: preemption — cluster shrinks to 4 GPUs");
    let cluster4 = ClusterSpec::v100_gpus(4);
    let db4 = ProfileDb::build(&model, &cluster4);
    let t0 = std::time::Instant::now();
    let cold4 = AcesoSearch::new(&model, &cluster4, &db4, options())
        .run()
        .expect("cold 4-GPU search");
    let cold4_elapsed = t0.elapsed();
    report_line(4, "cold search", cold4_elapsed, &cold4);

    let warm_opts = SearchOptions {
        stage_counts: Some(vec![full8.best_config.num_stages().min(4)]),
        ..options()
    };
    let t0 = std::time::Instant::now();
    let warm4 = AcesoSearch::new(&model, &cluster4, &db4, warm_opts)
        .run()
        .expect("warm 4-GPU search");
    let warm4_elapsed = t0.elapsed();
    report_line(4, "trace warm-start", warm4_elapsed, &warm4);
    println!(
        "  warm-start saved {:.2?} of wall time ({:.0}% of the cold search)",
        cold4_elapsed.saturating_sub(warm4_elapsed),
        100.0 * (1.0 - warm4_elapsed.as_secs_f64() / cold4_elapsed.as_secs_f64().max(1e-9)),
    );

    // Phase 3: allocation restored — same model, same cluster, same
    // options, so the preemption snapshot resumes bit-identically.
    println!("phase 3: allocation restored — resuming the preemption snapshot");
    let t0 = std::time::Instant::now();
    let (resumed8, _) = search8
        .resume_from(true, &snapshot)
        .expect("checkpoint resumes");
    let resumed_elapsed = t0.elapsed();
    report_line(8, "checkpoint resume", resumed_elapsed, &resumed8);
    println!(
        "  resume skipped {} of {} iterations and {:.2?} of wall time; \
         bit-identical result: {}",
        snapshot.iterations_done(),
        full8.explored,
        full8_elapsed.saturating_sub(resumed_elapsed),
        resumed8.best_time.to_bits() == full8.best_time.to_bits()
            && resumed8.best_config.semantic_hash() == full8.best_config.semantic_hash(),
    );

    println!(
        "\nthroughput-critical reconfiguration never waits on a cold search:\n\
         a shrink warm-starts from the old trace, a restore resumes the\n\
         checkpoint outright; a mathematical-programming search costing\n\
         hours would leave the cluster idle instead."
    );
}
