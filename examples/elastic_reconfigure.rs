//! Elastic reconfiguration — the introduction's motivating scenario.
//!
//! "Search overhead can be a huge burden when quick reconfiguration is
//! needed, e.g., in a shared cluster with frequent changes in resources."
//! This example trains on 8 GPUs, loses half the cluster, and re-searches
//! a configuration for the remaining 4 GPUs in seconds — reusing the
//! profiled database, exactly the workflow Aceso's low search cost
//! enables.
//!
//! Run with: `cargo run --release --example elastic_reconfigure`

use aceso::prelude::*;
use std::time::Duration;

fn search_and_report(model: &ModelGraph, gpus: usize) -> f64 {
    let cluster = ClusterSpec::v100_gpus(gpus);
    // Profiles are per-(model, cluster) but cheap to rebuild; a real
    // deployment would persist them with `ProfileDb::to_json`.
    let db = ProfileDb::build(model, &cluster);
    let t0 = std::time::Instant::now();
    let result = AcesoSearch::new(
        model,
        &cluster,
        &db,
        SearchOptions {
            max_iterations: 32,
            time_budget: Some(Duration::from_secs(10)),
            ..SearchOptions::default()
        },
    )
    .run()
    .expect("search finds a configuration");
    let report = Simulator::with_defaults(model, &cluster, &db)
        .execute(&result.best_config)
        .expect("config executes");
    println!(
        "  {gpus} GPUs: re-searched in {:.2?} ({} configs) -> {} stages, \
         {:.1} samples/s, memory ok: {}",
        t0.elapsed(),
        result.explored,
        result.best_config.num_stages(),
        report.throughput,
        report.ok()
    );
    report.throughput
}

fn main() {
    let model = aceso::model::zoo::gpt3_custom("elastic-gpt", 12, 1536, 16, 1024, 32000, 256);
    println!(
        "model `{}` ({:.2} B params) in a shared cluster:",
        model.name,
        model.total_params() as f64 / 1e9
    );

    println!("phase 1: full allocation");
    let t8 = search_and_report(&model, 8);

    println!("phase 2: preemption — cluster shrinks to 4 GPUs");
    let t4 = search_and_report(&model, 4);

    println!("phase 3: allocation restored");
    let t8b = search_and_report(&model, 8);

    println!(
        "\nthroughput adapted {:.1} -> {:.1} -> {:.1} samples/s with only\n\
         seconds of search between phases; a mathematical-programming\n\
         search costing hours would leave the cluster idle instead.",
        t8, t4, t8b
    );
}
